"""Inline ``# tcblint: disable=RULE`` suppression comments.

Two granularities:

- ``# tcblint: disable=TCB003`` on (or at the end of) a line suppresses
  the named rules for **that line only**;
- ``# tcblint: disable-file=TCB003`` anywhere in the file suppresses
  the named rules for the **whole file**.

Multiple rules may be given comma-separated
(``# tcblint: disable=TCB001,TCB005``); ``all`` matches every rule.
Comments are discovered with :mod:`tokenize`, so strings that merely
*look* like directives do not count, and directives may share a line
with code.

Each ``(rule, line)`` directive records whether it ever actually
suppressed a finding; :meth:`SuppressionMap.unused` reports the stale
ones so ``python -m repro lint --report-unused-suppressions`` can flag
directives that outlived the code they excused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["Directive", "SuppressionMap", "collect_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*tcblint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Directive:
    """One ``(rule, line)`` grain of a suppression comment."""

    rule: str  # normalised rule id, or "all"
    line: int  # the directive's own source line
    file_wide: bool


@dataclass
class SuppressionMap:
    """Which rules are silenced where, for one source file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)
    # Count of directives that parsed, for diagnostics.
    num_directives: int = 0
    # Every (rule, line) grain, and the ones that suppressed something.
    directives: list[Directive] = field(default_factory=list)
    used: set[Directive] = field(default_factory=set)
    # rule -> directive line, for file-wide grains.
    _file_lines: dict[str, int] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        hit = False
        for fw_rule in ("all", rule):
            if fw_rule in self.file_wide:
                self.used.add(
                    Directive(fw_rule, self._file_lines.get(fw_rule, 0), True)
                )
                hit = True
        rules = self.by_line.get(line)
        if rules is not None:
            for lr in ("all", rule):
                if lr in rules:
                    self.used.add(Directive(lr, line, False))
                    hit = True
        return hit

    def unused(self, ran_rules: Optional[set[str]] = None) -> Iterator[Directive]:
        """Directives that never suppressed anything this run.

        ``ran_rules`` limits the report to rules that were actually
        executed — a partial ``--rules`` run cannot judge directives for
        the rules it skipped (``all`` grains are always judged).
        """
        for d in self.directives:
            if d in self.used:
                continue
            if ran_rules is not None and d.rule != "all" and d.rule not in ran_rules:
                continue
            yield d


def _parse_rules(raw: str) -> set[str]:
    return {r.strip().upper() if r.strip() != "all" else "all"
            for r in raw.split(",") if r.strip()}


def collect_suppressions(source: str) -> SuppressionMap:
    """Scan *source* for tcblint directives (tolerant of bad syntax)."""
    smap = SuppressionMap()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _DIRECTIVE.search(tok.string)
            if not m:
                continue
            rules = _parse_rules(m.group("rules"))
            if not rules:
                continue
            smap.num_directives += 1
            line = tok.start[0]
            if m.group("kind") == "disable-file":
                smap.file_wide |= rules
                for r in rules:
                    smap._file_lines.setdefault(r, line)
                    smap.directives.append(Directive(r, line, True))
            else:
                smap.by_line.setdefault(line, set()).update(rules)
                for r in rules:
                    smap.directives.append(Directive(r, line, False))
    except tokenize.TokenError:  # partial files: honor what we saw
        pass
    return smap
