"""Inline ``# tcblint: disable=RULE`` suppression comments.

Two granularities:

- ``# tcblint: disable=TCB003`` on (or at the end of) a line suppresses
  the named rules for **that line only**;
- ``# tcblint: disable-file=TCB003`` anywhere in the file suppresses
  the named rules for the **whole file**.

Multiple rules may be given comma-separated
(``# tcblint: disable=TCB001,TCB005``); ``all`` matches every rule.
Comments are discovered with :mod:`tokenize`, so strings that merely
*look* like directives do not count, and directives may share a line
with code.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["SuppressionMap", "collect_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*tcblint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)


@dataclass
class SuppressionMap:
    """Which rules are silenced where, for one source file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)
    # Count of directives that parsed, for diagnostics.
    num_directives: int = 0

    def is_suppressed(self, rule: str, line: int) -> bool:
        if "all" in self.file_wide or rule in self.file_wide:
            return True
        rules = self.by_line.get(line)
        return rules is not None and ("all" in rules or rule in rules)


def _parse_rules(raw: str) -> set[str]:
    return {r.strip().upper() if r.strip() != "all" else "all"
            for r in raw.split(",") if r.strip()}


def collect_suppressions(source: str) -> SuppressionMap:
    """Scan *source* for tcblint directives (tolerant of bad syntax)."""
    smap = SuppressionMap()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _DIRECTIVE.search(tok.string)
            if not m:
                continue
            rules = _parse_rules(m.group("rules"))
            if not rules:
                continue
            smap.num_directives += 1
            if m.group("kind") == "disable-file":
                smap.file_wide |= rules
            else:
                smap.by_line.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:  # partial files: honor what we saw
        pass
    return smap
