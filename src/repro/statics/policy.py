"""Per-path policy table: where a rule deliberately does not apply.

Inline ``# tcblint: disable=`` comments are for one-off exceptions; the
policy table is for *structural* ones — whole files whose job is to do
the thing a rule forbids.  Every entry must carry a reason, and the
table is part of the review surface: adding a path here is a visible
diff, unlike sprinkling suppressions.

Patterns are :mod:`fnmatch` globs matched against the canonical posix
path of each file (``repro/pkg/module.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Iterable, Mapping

__all__ = [
    "DEFAULT_POLICY",
    "PathPolicy",
    "RNG_ENTRY_POINTS",
    "canonical_path",
    "path_matches",
]


def canonical_path(path: str) -> str:
    """Normalise *path* to ``repro/...`` posix form when possible.

    Absolute paths, ``src/``-prefixed paths and OS separators all lower
    to the same canonical key so policy globs are portable.  Paths
    outside the package (e.g. test fixtures) pass through unchanged.
    """
    posix = str(path).replace("\\", "/")
    parts = [p for p in posix.split("/") if p and p != "."]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return "/".join(parts)


def path_matches(path: str, pattern: str) -> bool:
    return fnmatch(canonical_path(path), pattern)


@dataclass(frozen=True)
class Exemption:
    pattern: str
    reason: str


@dataclass
class PathPolicy:
    """Maps rule id → path globs where the rule is waived."""

    exemptions: Mapping[str, tuple[Exemption, ...]] = field(default_factory=dict)

    def is_exempt(self, rule: str, path: str) -> bool:
        return any(
            path_matches(path, ex.pattern)
            for ex in self.exemptions.get(rule, ())
        )

    def reasons(self, rule: str) -> Iterable[Exemption]:
        return self.exemptions.get(rule, ())


# Paths where calling ``np.random.default_rng`` is a *documented entry
# point* — the seed-to-Generator boundary of the system.  Everywhere
# else, functions must accept an injected Generator (usually via
# ``repro.rng.ensure_rng``) so callers control replayability end-to-end.
# This list is specific to TCB002's ``default_rng`` sub-check; module-
# level RNG (``np.random.seed`` / ``np.random.rand`` …) is banned with
# no exemption anywhere.
RNG_ENTRY_POINTS: tuple[str, ...] = (
    # The seed→Generator helper itself.
    "repro/rng.py",
    # CLI subcommands are top-level user entry points.
    "repro/cli.py",
    # Model initialisation is keyed by its seed (checkpoint identity).
    "repro/model/params.py",
    # Experiment drivers own figure-level seeds (paper replication).
    "repro/experiments/*.py",
    # Workload generators are *defined* by (distribution, seed).
    "repro/workload/*.py",
)


DEFAULT_POLICY = PathPolicy(
    exemptions={
        # The canonical mask constructors are the one place allowed to
        # lower boolean "allowed" arrays to additive NEG_INF masks.
        "TCB001": (
            Exemption("repro/core/masks.py", "canonical mask constructors (Eq. 5-8)"),
        ),
        # Fig. 16 measures DAS *wall-clock* scheduling overhead: the
        # schedulers deliberately time their own decision loop.  The
        # simulator clock everywhere else must stay event-driven.
        "TCB003": (
            Exemption("repro/scheduling/das.py", "fig16 DAS overhead measurement"),
            Exemption("repro/scheduling/slotted_das.py", "fig16 overhead measurement"),
            Exemption("repro/scheduling/baselines.py", "fig16 baseline overhead"),
            Exemption("repro/scheduling/oracle.py", "oracle LP runtime measurement"),
        ),
        # The overload ledger is the single sanctioned queue.drop /
        # queue.take caller: it pairs every removal with its metrics
        # ledger entry and trace terminal in one place.
        "TCB008": (
            Exemption(
                "repro/overload/ledger.py",
                "the conservation-preserving shed/drop helpers themselves",
            ),
            Exemption(
                "repro/durability/restore.py",
                "journal replay re-applies already-ledgered drops verbatim",
            ),
        ),
        # Attention/mask modules legitimately build (W, W) score-shaped
        # arrays; slotting exists to eliminate them everywhere else.
        "TCB006": (
            Exemption("repro/core/concat_attention.py", "the attention kernel itself"),
            Exemption("repro/core/masks.py", "mask constructors are (W, W) by design"),
            Exemption("repro/model/attention.py", "multi-head attention kernel"),
        ),
    }
)
