"""The syntactic tcblint rules (TCB001–TCB008).

Each rule protects one cross-cutting invariant of the reproduction;
``docs/statics.md`` ties every rule to the paper equation or
reproducibility requirement behind it.  The flow-sensitive rules
(TCB009–TCB013) live in :mod:`repro.statics.flowchecks` and are merged
into :data:`ALL_RULES` here.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.statics.findings import Finding, Severity
from repro.statics.flowchecks import FLOW_RULES
from repro.statics.policy import RNG_ENTRY_POINTS, path_matches
from repro.statics.rules import ModuleContext, Rule, resolve

__all__ = ["ALL_RULES", "RULES_BY_ID"]


def _is_neg_inf_like(node: ast.AST) -> bool:
    """NEG_INF, <anything>.NEG_INF, or a finite constant ≤ -1e8 / ≥ 1e8."""
    if isinstance(node, ast.Name) and node.id == "NEG_INF":
        return True
    if isinstance(node, ast.Attribute) and node.attr == "NEG_INF":
        return True
    value: Optional[float] = None
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        value = float(node.value)
    elif (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    ):
        value = -float(node.operand.value)
    if value is None:
        return False
    # Exclude ±inf: sampling-style logit truncation with -np.inf is not
    # an additive attention mask.
    return abs(value) >= 1e8 and value == value and abs(value) != float("inf")


class MaskDiscipline(Rule):
    """TCB001 — additive masks come from ``repro.core.masks`` (Eq. 5–8)."""

    rule_id = "TCB001"
    title = "ad-hoc additive attention mask"
    severity = Severity.ERROR

    _BUILDERS = ("numpy.where", "numpy.full", "numpy.full_like")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve(ctx, node.func)
            if target not in self._BUILDERS:
                continue
            if any(_is_neg_inf_like(a) for a in node.args) or any(
                _is_neg_inf_like(kw.value) for kw in node.keywords
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{target.split('.')[-1]}(..., NEG_INF) builds an additive "
                    "mask ad hoc; use the canonical constructors in "
                    "repro.core.masks (block_diagonal_mask, causal_block_mask, "
                    "cross_attention_mask, ...) so Eq. 5-8 semantics stay in "
                    "one audited place",
                )


class GlobalRngBan(Rule):
    """TCB002 — all randomness threads an explicit ``np.random.Generator``."""

    rule_id = "TCB002"
    title = "global / untracked RNG"
    severity = Severity.ERROR

    # numpy.random attributes that are types, fine to reference anywhere
    # (annotations, isinstance checks, Generator construction from bits).
    _TYPE_NAMES = frozenset(
        {
            "Generator",
            "BitGenerator",
            "SeedSequence",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "MT19937",
            "SFC64",
        }
    )
    _STDLIB_OK = frozenset({"Random", "SystemRandom", "getstate", "setstate"})

    def _flag(self, ctx: ModuleContext, node: ast.AST, chain: str):
        if chain == "numpy.random.seed":
            return self.finding(
                ctx,
                node,
                "np.random.seed mutates the process-global RNG; every figure "
                "must be replayable from an explicit np.random.Generator",
            )
        if chain.startswith("numpy.random."):
            head = chain[len("numpy.random."):].split(".", 1)[0]
            if head in self._TYPE_NAMES:
                return None
            if head == "default_rng":
                if any(path_matches(ctx.path, p) for p in RNG_ENTRY_POINTS):
                    return None
                return self.finding(
                    ctx,
                    node,
                    "np.random.default_rng outside the documented entry points "
                    "(see repro.statics.policy.RNG_ENTRY_POINTS); accept an "
                    "injected np.random.Generator instead "
                    "(repro.rng.ensure_rng helps)",
                )
            return self.finding(
                ctx,
                node,
                f"np.random.{head} draws from the process-global RNG; thread "
                "an explicit np.random.Generator through instead",
            )
        if chain.startswith("random."):
            head = chain[len("random."):].split(".", 1)[0]
            if head in self._STDLIB_OK:
                return None
            return self.finding(
                ctx,
                node,
                f"stdlib random.{head} is process-global and unseeded here; "
                "use an injected np.random.Generator",
            )
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            chain = resolve(ctx, node)
            if chain is None:
                continue
            # Only report the *full* chain (an Attribute that is itself
            # the value of a longer Attribute is skipped via parents not
            # being trackable — ast.walk gives us every sub-chain, but
            # sub-chains resolve to prefixes that never match a banned
            # leaf, so no dedup is needed).
            f = self._flag(ctx, node, chain)
            if f is not None:
                yield f


class SimTimePurity(Rule):
    """TCB003 — no wall-clock reads in the discrete-event world."""

    rule_id = "TCB003"
    title = "wall-clock read in simulator code"
    severity = Severity.ERROR

    _SCOPE = (
        "repro/serving/",
        "repro/scheduling/",
        "repro/obs/",
        "repro/overload/",
        "repro/durability/",
        "repro/cluster_health/",
        "repro/tenancy/",
    )
    _BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
            "time.thread_time",
            "time.thread_time_ns",
            "time.clock",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.path.startswith(self._SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            chain = resolve(ctx, node)
            if chain in self._BANNED:
                yield self.finding(
                    ctx,
                    node,
                    f"{chain} reads wall-clock time inside the discrete-event "
                    "simulator; advance simulated time explicitly (the only "
                    "sanctioned wall-clock paths are the fig16 overhead "
                    "measurements listed in repro.statics.policy)",
                )


class DtypeDiscipline(Rule):
    """TCB004 — hot paths keep the canonical float64 convention."""

    rule_id = "TCB004"
    title = "non-canonical float dtype in hot path"
    severity = Severity.WARNING

    _SCOPE = ("repro/core/", "repro/model/", "repro/engine/")
    _BANNED_ATTRS = frozenset(
        {"numpy.float32", "numpy.float16", "numpy.single", "numpy.half"}
    )
    _BANNED_STRINGS = frozenset({"float32", "float16", "single", "half", "f4", "f2"})

    def _banned_string(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in self._BANNED_STRINGS
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.path.startswith(self._SCOPE):
            return
        msg = (
            "uses a reduced-precision float dtype; core/model/engine hot "
            "paths follow the repo-wide float64 convention so masks "
            "underflow exactly and goldens stay bit-stable"
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if resolve(ctx, node) in self._BANNED_ATTRS:
                    yield self.finding(ctx, node, f"{ast.unparse(node)} {msg}")
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "dtype" and self._banned_string(kw.value):
                        yield self.finding(ctx, node, f"dtype={kw.value.value!r} {msg}")
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"
                    and node.args
                    and self._banned_string(node.args[0])
                ):
                    yield self.finding(
                        ctx, node, f"astype({node.args[0].value!r}) {msg}"
                    )


class MutableDefaults(Rule):
    """TCB005 — no mutable default arguments."""

    rule_id = "TCB005"
    title = "mutable default argument"
    severity = Severity.WARNING

    _FACTORY_NAMES = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
         "deque", "Counter"}
    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._FACTORY_NAMES
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            name = getattr(node, "name", "<lambda>")
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for d in defaults:
                if self._is_mutable(d):
                    yield self.finding(
                        ctx,
                        d,
                        f"mutable default in {name}(): evaluated once at def "
                        "time and shared across calls; default to None (or a "
                        "dataclass field(default_factory=...))",
                    )


class QuadraticAllocation(Rule):
    """TCB006 — no stray ``(…, L, L)`` score-matrix allocations."""

    rule_id = "TCB006"
    title = "quadratic score-matrix allocation"
    severity = Severity.WARNING

    _ALLOCATORS = ("numpy.zeros", "numpy.empty", "numpy.ones", "numpy.full")

    def _shape_arg(self, node: ast.Call) -> Optional[ast.AST]:
        for kw in node.keywords:
            if kw.arg == "shape":
                return kw.value
        return node.args[0] if node.args else None

    @staticmethod
    def _reference_spans(tree: ast.AST) -> list[tuple[int, int]]:
        """Line ranges of ``_reference_*`` functions (differential
        oracles kept verbatim for the fast-path equivalence harness —
        exempt by design, see docs/statics.md)."""
        spans: list[tuple[int, int]] = []
        for node in ast.walk(tree):
            is_oracle = (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name.startswith("_reference_")
            ) or (
                isinstance(node, ast.ClassDef)
                and node.name.startswith("_Reference")
            )
            if is_oracle:
                spans.append((node.lineno, node.end_lineno or node.lineno))
        return spans

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        oracle_spans = self._reference_spans(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if any(a <= node.lineno <= b for a, b in oracle_spans):
                continue
            target = resolve(ctx, node.func)
            if target not in self._ALLOCATORS:
                continue
            shape = self._shape_arg(node)
            if not isinstance(shape, ast.Tuple) or len(shape.elts) < 2:
                continue
            a, b = shape.elts[-2], shape.elts[-1]
            symbolic = isinstance(a, (ast.Name, ast.Attribute)) and isinstance(
                b, (ast.Name, ast.Attribute)
            )
            if symbolic and ast.dump(a) == ast.dump(b):
                yield self.finding(
                    ctx,
                    node,
                    f"{target.split('.')[-1]} with a (..., "
                    f"{ast.unparse(a)}, {ast.unparse(b)}) score-matrix shape "
                    "outside the attention modules; §4.2 slotting exists to "
                    "eliminate quadratic buffers — build masks via "
                    "repro.core.masks or restructure per-slot",
                )


class SwallowedExceptions(Rule):
    """TCB007 — serving/engine code never swallows failures silently."""

    rule_id = "TCB007"
    title = "bare or silently swallowed exception"
    severity = Severity.ERROR

    # Fault tolerance (docs/faults.md) rests on failures surfacing as
    # typed outcomes; a swallowed exception in these trees silently
    # converts a fault into a success and breaks the conservation
    # invariant.
    _SCOPE = ("repro/serving/", "repro/engine/", "repro/faults/")

    @staticmethod
    def _is_silent(handler: ast.ExceptHandler) -> bool:
        """True when the handler body does nothing but pass/docstring."""
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
            )
            for stmt in handler.body
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.path.startswith(self._SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` catches everything (including "
                    "KeyboardInterrupt) and hides faults the serving loops "
                    "must see; catch the specific exception (BatchFailure, "
                    "EngineDown, ...) instead",
                )
            elif self._is_silent(node):
                caught = ast.unparse(node.type)
                yield self.finding(
                    ctx,
                    node,
                    f"`except {caught}: pass` silently swallows the failure; "
                    "serving/engine code must surface faults as typed "
                    "outcomes (re-raise, requeue, or record them) so the "
                    "conservation invariant can hold",
                )


class LedgeredDrops(Rule):
    """TCB008 — queue removals route through the conservation ledger."""

    rule_id = "TCB008"
    title = "unledgered queue drop/shed"
    severity = Severity.ERROR

    # The conservation invariant (served + expired + rejected +
    # abandoned == arrived) only survives load shedding if every queue
    # removal lands in exactly one metrics ledger and one trace
    # terminal.  repro.overload.ledger is the single sanctioned caller
    # (policy-exempted); everywhere in these trees, bare ``.drop()`` /
    # ``.take()`` call sites and splices of another object's
    # ``_waiting`` dict are banned.
    _SCOPE = (
        "repro/serving/",
        "repro/scheduling/queue.py",
        "repro/overload/",
        "repro/durability/",
        "repro/cluster_health/",
        "repro/tenancy/",
    )
    _LEDGER_METHODS = frozenset({"drop", "take"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.path.startswith(self._SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._LEDGER_METHODS
                # The queue's own methods may do their internal
                # bookkeeping; only *callers* must go through the ledger.
                and not (
                    isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                )
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"bare queue .{node.func.attr}() call site; route the "
                    "removal through repro.overload.ledger "
                    "(shed_requests / drop_unservable) so the shed lands in "
                    "a metrics ledger and a trace terminal — otherwise the "
                    "conservation invariant silently loses requests",
                )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "_waiting"
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
            ):
                yield self.finding(
                    ctx,
                    node,
                    "reaching into another object's _waiting dict bypasses "
                    "the queue's ledger accounting; use RequestQueue's API "
                    "(and repro.overload.ledger for removals) instead",
                )


ALL_RULES: tuple[Rule, ...] = (
    MaskDiscipline(),
    GlobalRngBan(),
    SimTimePurity(),
    DtypeDiscipline(),
    MutableDefaults(),
    QuadraticAllocation(),
    SwallowedExceptions(),
    LedgeredDrops(),
    *FLOW_RULES,
)

RULES_BY_ID: dict[str, Rule] = {r.rule_id: r for r in ALL_RULES}
