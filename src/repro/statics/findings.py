"""Finding and severity types shared by every tcblint rule."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break reproducibility or correctness invariants
    (wrong masks, unseeded randomness, wall-clock in the simulator);
    ``WARNING`` findings are strong conventions (dtype, allocation
    hygiene).  Both fail ``python -m repro lint`` — the distinction is
    informational, for triage.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str  # e.g. "TCB001"
    path: str  # canonical posix path, e.g. "repro/model/beam.py"
    line: int  # 1-based
    col: int  # 0-based, as in the ast module
    severity: Severity
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )
