"""SARIF 2.1.0 export for tcblint reports.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest — GitHub's security tab, VS Code's SARIF viewer, etc.  This
module emits the minimal valid subset: one run, a ``tool.driver`` with
the rule catalog, and one ``result`` per finding (plus one per parse
error, so a syntactically broken file cannot read as a green run).

The export is intentionally lossless with respect to exit codes: a
report is SARIF-clean iff ``LintReport.clean``, so ``--format sarif``
exits exactly like ``--format text``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.statics.engine import LintReport
from repro.statics.findings import Severity
from repro.statics.rules import Rule

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptor(rule: Rule) -> dict[str, Any]:
    return {
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "note")
        },
    }


def to_sarif(report: LintReport, rules: Sequence[Rule]) -> dict[str, Any]:
    """Render *report* as a SARIF 2.1.0 log object (JSON-serialisable)."""
    results: list[dict[str, Any]] = []
    for f in report.findings:
        results.append(
            {
                "ruleId": f.rule,
                "level": _LEVELS.get(f.severity, "note"),
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": f.line,
                                # SARIF columns are 1-based; ast's are 0-based.
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    # Parse errors become tool-level notifications so a broken file is
    # visible in the scanning UI, not silently dropped.
    notifications = [
        {"level": "error", "message": {"text": err}}
        for err in report.parse_errors
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "tcblint",
                        "informationUri": "docs/statics.md",
                        "rules": [_rule_descriptor(r) for r in rules],
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not report.parse_errors,
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }
