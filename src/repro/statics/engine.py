"""tcblint driver: walk files, run rules, apply policy + suppressions.

The run is two-phase:

1. **Per-file rules** check each module in isolation as it is parsed.
2. **Project rules** (:class:`~repro.statics.rules.ProjectRule` — the
   interprocedural TCB011/TCB012) run once over every parsed module.

Findings from both phases pass through the same per-path policy and
inline-suppression filters.  A lint may analyze more files than it
reports on (``report_only``, used by ``--changed-only``): project rules
still see the whole package so call graphs stay complete, but findings
and file counts cover only the requested files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.statics.checks import ALL_RULES, RULES_BY_ID
from repro.statics.findings import Finding
from repro.statics.policy import DEFAULT_POLICY, PathPolicy, canonical_path
from repro.statics.rules import ModuleContext, ProjectRule, Rule, make_context
from repro.statics.suppressions import SuppressionMap, collect_suppressions

__all__ = ["LintReport", "lint_file", "lint_package", "lint_paths", "lint_source"]


@dataclass
class LintReport:
    """Result of a lint run over one or more paths."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0  # findings silenced by inline directives
    exempted: int = 0  # findings waived by the path policy
    parse_errors: list[str] = field(default_factory=list)
    # Stale inline directives: {"path", "line", "rule"} dicts
    # (populated after every run; gated on exit codes only by the
    # --report-unused-suppressions CLI flag).
    unused_suppressions: list[dict] = field(default_factory=list)
    # Findings filtered out by a --baseline file.
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "exempted": self.exempted,
            "baselined": self.baselined,
            "parse_errors": list(self.parse_errors),
            "unused_suppressions": list(self.unused_suppressions),
            "findings": [f.to_dict() for f in self.findings],
        }


def _select_rules(rules: Optional[Sequence[str]]) -> list[Rule]:
    if rules is None:
        return list(ALL_RULES)
    selected = []
    for rid in rules:
        rid = rid.strip().upper()
        if rid not in RULES_BY_ID:
            raise ValueError(
                f"unknown rule {rid!r}; known: {', '.join(sorted(RULES_BY_ID))}"
            )
        selected.append(RULES_BY_ID[rid])
    return selected


@dataclass
class _FileState:
    """Per-file artifacts threaded between the two phases."""

    ctx: ModuleContext
    smap: SuppressionMap
    reported: bool  # findings on this file are kept (vs. analysis-only)


def _filter(
    finding: Finding,
    policy: Optional[PathPolicy],
    smap: SuppressionMap,
    report: LintReport,
) -> Optional[Finding]:
    """Route one finding through the policy and suppression filters."""
    if policy is not None and policy.is_exempt(finding.rule, finding.path):
        report.exempted += 1
        return None
    if smap.is_suppressed(finding.rule, finding.line):
        report.suppressed += 1
        return None
    return finding


def _collect_unused(
    states: Iterable[_FileState],
    selected: Sequence[Rule],
    report: LintReport,
) -> None:
    ran = {r.rule_id for r in selected}
    for st in states:
        if not st.reported:
            continue
        for d in st.smap.unused(ran):
            report.unused_suppressions.append(
                {"path": st.ctx.path, "line": d.line, "rule": d.rule}
            )


def _run_project_rules(
    states: list[_FileState],
    selected: Sequence[Rule],
    policy: Optional[PathPolicy],
    report: LintReport,
) -> list[Finding]:
    project_rules = [r for r in selected if isinstance(r, ProjectRule)]
    if not project_rules or not states:
        return []
    contexts = [st.ctx for st in states]
    by_path = {st.ctx.path: st for st in states}
    kept: list[Finding] = []
    for rule in project_rules:
        for finding in rule.check_project(contexts):
            st = by_path.get(finding.path)
            if st is None or not st.reported:
                continue  # analysis-only file (outside --changed-only set)
            f = _filter(finding, policy, st.smap, report)
            if f is not None:
                kept.append(f)
    return kept


def lint_source(
    source: str,
    path: str,
    *,
    rules: Optional[Sequence[str]] = None,
    policy: Optional[PathPolicy] = DEFAULT_POLICY,
    report: Optional[LintReport] = None,
) -> list[Finding]:
    """Lint one source string; *path* drives path-scoped rules/policy.

    The single module doubles as the whole "project" for the project
    rules, so fixtures exercise TCB011/TCB012 in one file.
    """
    report = report if report is not None else LintReport()
    selected = _select_rules(rules)
    cpath = canonical_path(path)
    ctx = make_context(source, cpath)
    smap = collect_suppressions(source)
    st = _FileState(ctx=ctx, smap=smap, reported=True)
    kept: list[Finding] = []
    for rule in selected:
        for finding in rule.check(ctx):
            f = _filter(finding, policy, smap, report)
            if f is not None:
                kept.append(f)
    kept.extend(_run_project_rules([st], selected, policy, report))
    kept.sort(key=Finding.sort_key)
    report.findings.extend(kept)
    report.files_scanned += 1
    _collect_unused([st], selected, report)
    return kept


def lint_file(
    path: str | Path,
    *,
    rules: Optional[Sequence[str]] = None,
    policy: Optional[PathPolicy] = DEFAULT_POLICY,
    report: Optional[LintReport] = None,
) -> list[Finding]:
    report = report if report is not None else LintReport()
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
        return lint_source(
            source, str(p), rules=rules, policy=policy, report=report
        )
    except (OSError, SyntaxError, ValueError) as exc:
        if isinstance(exc, ValueError) and "unknown rule" in str(exc):
            raise
        report.parse_errors.append(f"{canonical_path(str(p))}: {exc}")
        return []


def _iter_python_files(root: Path) -> Iterable[Path]:
    if root.is_file():
        yield root
        return
    for p in sorted(root.rglob("*.py")):
        if "__pycache__" in p.parts:
            continue
        yield p


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Optional[Sequence[str]] = None,
    policy: Optional[PathPolicy] = DEFAULT_POLICY,
    report_only: Optional[set[str]] = None,
) -> LintReport:
    """Lint every ``*.py`` under the given files/directories.

    With ``report_only`` (a set of canonical paths), every file is still
    *parsed* — project rules need the full module set — but per-file
    rules, findings and ``files_scanned`` cover only the listed files.
    """
    report = LintReport()
    selected = _select_rules(rules)
    states: list[_FileState] = []
    for root in paths:
        rp = Path(root)
        if not rp.exists():
            # A typo'd path must not report green in CI.
            report.parse_errors.append(f"{root}: path does not exist")
            continue
        for p in _iter_python_files(rp):
            cpath = canonical_path(str(p))
            reported = report_only is None or cpath in report_only
            try:
                source = p.read_text(encoding="utf-8")
                ctx = make_context(source, cpath)
            except (OSError, SyntaxError, ValueError) as exc:
                if reported:
                    report.parse_errors.append(f"{cpath}: {exc}")
                continue
            smap = collect_suppressions(source)
            st = _FileState(ctx=ctx, smap=smap, reported=reported)
            states.append(st)
            if not reported:
                continue
            report.files_scanned += 1
            for rule in selected:
                for finding in rule.check(ctx):
                    f = _filter(finding, policy, smap, report)
                    if f is not None:
                        report.findings.append(f)
    report.findings.extend(
        _run_project_rules(states, selected, policy, report)
    )
    report.findings.sort(key=Finding.sort_key)
    _collect_unused(states, selected, report)
    return report


def lint_package(
    *,
    rules: Optional[Sequence[str]] = None,
    policy: Optional[PathPolicy] = DEFAULT_POLICY,
    report_only: Optional[set[str]] = None,
) -> LintReport:
    """Lint the installed ``repro`` package source itself.

    This is what ``python -m repro lint`` (no arguments) and the tier-1
    ``tests/test_statics_clean.py`` run, so it works from any cwd.
    """
    package_root = Path(__file__).resolve().parent.parent  # .../repro
    return lint_paths(
        [package_root], rules=rules, policy=policy, report_only=report_only
    )
