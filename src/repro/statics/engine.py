"""tcblint driver: walk files, run rules, apply policy + suppressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.statics.checks import ALL_RULES, RULES_BY_ID
from repro.statics.findings import Finding
from repro.statics.policy import DEFAULT_POLICY, PathPolicy, canonical_path
from repro.statics.rules import Rule, make_context
from repro.statics.suppressions import collect_suppressions

__all__ = ["LintReport", "lint_file", "lint_package", "lint_paths", "lint_source"]


@dataclass
class LintReport:
    """Result of a lint run over one or more paths."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0  # findings silenced by inline directives
    exempted: int = 0  # findings waived by the path policy
    parse_errors: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "exempted": self.exempted,
            "parse_errors": list(self.parse_errors),
            "findings": [f.to_dict() for f in self.findings],
        }


def _select_rules(rules: Optional[Sequence[str]]) -> list[Rule]:
    if rules is None:
        return list(ALL_RULES)
    selected = []
    for rid in rules:
        rid = rid.strip().upper()
        if rid not in RULES_BY_ID:
            raise ValueError(
                f"unknown rule {rid!r}; known: {', '.join(sorted(RULES_BY_ID))}"
            )
        selected.append(RULES_BY_ID[rid])
    return selected


def lint_source(
    source: str,
    path: str,
    *,
    rules: Optional[Sequence[str]] = None,
    policy: Optional[PathPolicy] = DEFAULT_POLICY,
    report: Optional[LintReport] = None,
) -> list[Finding]:
    """Lint one source string; *path* drives path-scoped rules/policy."""
    report = report if report is not None else LintReport()
    cpath = canonical_path(path)
    ctx = make_context(source, cpath)
    smap = collect_suppressions(source)
    kept: list[Finding] = []
    for rule in _select_rules(rules):
        for finding in rule.check(ctx):
            if policy is not None and policy.is_exempt(finding.rule, cpath):
                report.exempted += 1
                continue
            if smap.is_suppressed(finding.rule, finding.line):
                report.suppressed += 1
                continue
            kept.append(finding)
    kept.sort(key=Finding.sort_key)
    report.findings.extend(kept)
    report.files_scanned += 1
    return kept


def lint_file(
    path: str | Path,
    *,
    rules: Optional[Sequence[str]] = None,
    policy: Optional[PathPolicy] = DEFAULT_POLICY,
    report: Optional[LintReport] = None,
) -> list[Finding]:
    report = report if report is not None else LintReport()
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
        return lint_source(
            source, str(p), rules=rules, policy=policy, report=report
        )
    except (OSError, SyntaxError, ValueError) as exc:
        if isinstance(exc, ValueError) and "unknown rule" in str(exc):
            raise
        report.parse_errors.append(f"{canonical_path(str(p))}: {exc}")
        return []


def _iter_python_files(root: Path) -> Iterable[Path]:
    if root.is_file():
        yield root
        return
    for p in sorted(root.rglob("*.py")):
        if "__pycache__" in p.parts:
            continue
        yield p


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Optional[Sequence[str]] = None,
    policy: Optional[PathPolicy] = DEFAULT_POLICY,
) -> LintReport:
    """Lint every ``*.py`` under the given files/directories."""
    report = LintReport()
    for root in paths:
        rp = Path(root)
        if not rp.exists():
            # A typo'd path must not report green in CI.
            report.parse_errors.append(f"{root}: path does not exist")
            continue
        for p in _iter_python_files(rp):
            lint_file(p, rules=rules, policy=policy, report=report)
    report.findings.sort(key=Finding.sort_key)
    return report


def lint_package(
    *,
    rules: Optional[Sequence[str]] = None,
    policy: Optional[PathPolicy] = DEFAULT_POLICY,
) -> LintReport:
    """Lint the installed ``repro`` package source itself.

    This is what ``python -m repro lint`` (no arguments) and the tier-1
    ``tests/test_statics_clean.py`` run, so it works from any cwd.
    """
    package_root = Path(__file__).resolve().parent.parent  # .../repro
    return lint_paths([package_root], rules=rules, policy=policy)
