"""The ``python -m repro lint`` subcommand (text and JSON output)."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.statics.checks import ALL_RULES
from repro.statics.engine import LintReport, lint_package, lint_paths

__all__ = ["add_lint_parser", "run_lint"]


def add_lint_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "lint",
        help="run tcblint, the repo's AST-based invariant checker",
        description=(
            "Check repo invariants (mask discipline, RNG threading, "
            "sim-time purity, dtype, mutable defaults, quadratic "
            "allocations) over the repro package or the given paths."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    p.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all), e.g. TCB001,TCB003",
    )
    p.add_argument(
        "--no-policy",
        action="store_true",
        help="ignore the per-path exemption policy (show waived findings too)",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    p.add_argument("--out", help="write the report to a file instead of stdout")
    p.set_defaults(func=run_lint)
    return p


def _render_text(report: LintReport) -> str:
    lines = [f.render() for f in report.findings]
    lines.extend(f"parse error: {e}" for e in report.parse_errors)
    summary = (
        f"tcblint: {len(report.findings)} finding(s) in "
        f"{report.files_scanned} file(s) "
        f"({report.suppressed} suppressed inline, "
        f"{report.exempted} waived by policy)"
    )
    lines.append(summary)
    return "\n".join(lines)


def run_lint(args) -> int:
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  [{rule.severity.value:7s}] {rule.title}")
        return 0
    kwargs = {"rules": args.rules.split(",") if args.rules else None}
    if args.no_policy:
        kwargs["policy"] = None
    try:
        if args.paths:
            report = lint_paths(args.paths, **kwargs)
        else:
            report = lint_package(**kwargs)
    except ValueError as exc:  # unknown rule id
        print(f"tcblint: {exc}", file=sys.stderr)
        return 2
    text = (
        json.dumps(report.to_dict(), indent=2)
        if args.fmt == "json"
        else _render_text(report)
    )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0 if report.clean else 1
