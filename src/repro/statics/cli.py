"""The ``python -m repro lint`` subcommand.

Output formats (``--format``): human ``text``, machine ``json``, and
``sarif`` for code-scanning UIs.  All three share one exit-code path
(:func:`_exit_code`), so CI behaves identically whichever format it
captures.

Incremental modes:

- ``--changed-only`` restricts *reported* files to those changed since
  ``merge-base(HEAD, origin/main)`` (plus worktree edits and untracked
  files).  The whole package is still parsed so the interprocedural
  rules keep a complete call graph.  Outside a git checkout the flag
  degrades to linting everything — it can hide findings only when git
  can actually say what changed.
- ``--baseline FILE`` drops findings recorded in a snapshot written by
  ``--write-baseline FILE``; only *new* findings fail the run.
- ``--report-unused-suppressions`` additionally fails the run when an
  inline ``# tcblint: disable`` directive no longer suppresses anything.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from typing import Optional

from repro.statics.baseline import apply_baseline, load_baseline, write_baseline
from repro.statics.checks import ALL_RULES
from repro.statics.engine import LintReport, lint_package, lint_paths
from repro.statics.policy import canonical_path
from repro.statics.sarif import to_sarif

__all__ = ["add_lint_parser", "run_lint"]


def add_lint_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "lint",
        help="run tcblint, the repo's AST-based invariant checker",
        description=(
            "Check repo invariants (mask discipline, RNG threading, "
            "sim-time purity, dtype, mutable defaults, quadratic "
            "allocations, ledger escapes, time-domain taint, RNG stream "
            "aliasing, typed-fault escapes) over the repro package or "
            "the given paths."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="fmt",
    )
    p.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all), e.g. TCB001,TCB003",
    )
    p.add_argument(
        "--no-policy",
        action="store_true",
        help="ignore the per-path exemption policy (show waived findings too)",
    )
    p.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "report findings only for files changed vs. "
            "merge-base(HEAD, origin/main); all files are still analyzed"
        ),
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this snapshot (only new ones fail)",
    )
    p.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="snapshot current findings to FILE and exit 0",
    )
    p.add_argument(
        "--report-unused-suppressions",
        action="store_true",
        help="fail when an inline tcblint directive no longer fires",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    p.add_argument("--out", help="write the report to a file instead of stdout")
    p.set_defaults(func=run_lint)
    return p


def _git(*argv: str) -> Optional[str]:
    """Run one git command; None on any failure (no repo, no ref, …)."""
    try:
        proc = subprocess.run(
            ["git", *argv],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def _changed_files() -> Optional[set[str]]:
    """Canonical paths of files changed vs. the main branch.

    Returns None when git cannot answer (not a checkout, git missing),
    which callers treat as "lint everything" — degrading to *more*
    coverage, never less.  With no usable merge base (e.g. a repo with
    no ``origin``), the diff base falls back to local ``main`` and then
    to ``HEAD``, so worktree edits and untracked files still count.
    """
    if _git("rev-parse", "--git-dir") is None:
        return None
    base = None
    for ref in ("origin/main", "main"):
        out = _git("merge-base", "HEAD", ref)
        if out is not None:
            base = out.strip()
            break
    diff = _git("diff", "--name-only", base if base else "HEAD")
    untracked = _git("ls-files", "--others", "--exclude-standard")
    if diff is None and untracked is None:
        return None
    changed: set[str] = set()
    for blob in (diff or "", untracked or ""):
        for line in blob.splitlines():
            line = line.strip()
            if line.endswith(".py"):
                changed.add(canonical_path(line))
    return changed


def _render_text(report: LintReport, args) -> str:
    lines = [f.render() for f in report.findings]
    lines.extend(f"parse error: {e}" for e in report.parse_errors)
    if args.report_unused_suppressions:
        lines.extend(
            f"{d['path']}:{d['line']}: unused suppression "
            f"[{d['rule']}] (directive never fired)"
            for d in report.unused_suppressions
        )
    summary = (
        f"tcblint: {len(report.findings)} finding(s) in "
        f"{report.files_scanned} file(s) "
        f"({report.suppressed} suppressed inline, "
        f"{report.exempted} waived by policy"
    )
    if report.baselined:
        summary += f", {report.baselined} baselined"
    summary += ")"
    lines.append(summary)
    return "\n".join(lines)


def _exit_code(report: LintReport, args) -> int:
    """One exit-code policy for every output format.

    0 = clean, 1 = findings / parse errors (or stale suppressions under
    ``--report-unused-suppressions``), 2 = usage error (raised earlier).
    """
    if not report.clean:
        return 1
    if args.report_unused_suppressions and report.unused_suppressions:
        return 1
    return 0


def run_lint(args) -> int:
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  [{rule.severity.value:7s}] {rule.title}")
        return 0
    kwargs = {"rules": args.rules.split(",") if args.rules else None}
    if args.no_policy:
        kwargs["policy"] = None
    if args.changed_only:
        kwargs["report_only"] = _changed_files()
    try:
        if args.paths:
            report = lint_paths(args.paths, **kwargs)
        else:
            report = lint_package(**kwargs)
    except ValueError as exc:  # unknown rule id
        print(f"tcblint: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        n = write_baseline(report, args.write_baseline)
        print(f"tcblint: wrote baseline ({n} finding(s)) to {args.write_baseline}")
        # Snapshotting a dirty tree is the point; only broken files fail.
        return 1 if report.parse_errors else 0
    if args.baseline:
        try:
            budgets = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"tcblint: bad baseline: {exc}", file=sys.stderr)
            return 2
        apply_baseline(report, budgets)
    if args.fmt == "json":
        text = json.dumps(report.to_dict(), indent=2)
    elif args.fmt == "sarif":
        text = json.dumps(to_sarif(report, ALL_RULES), indent=2)
    else:
        text = _render_text(report, args)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return _exit_code(report, args)
