"""Baseline snapshots: adopt tcblint on a tree with known findings.

A baseline is a JSON map of finding *fingerprints* to counts.  The
fingerprint is ``(rule, path, message)`` — deliberately **not** the
line number, so reformatting or adding imports above a known finding
does not resurface it, while any new instance of the same rule in the
same file with a different message does.

Workflow::

    python -m repro lint --write-baseline .tcblint-baseline.json
    # later — only NEW findings fail the run:
    python -m repro lint --baseline .tcblint-baseline.json

Multiple identical findings (same fingerprint, e.g. the same banned
call repeated) are counted: a baseline with count 2 absorbs at most two
occurrences and the third fails the run.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.statics.engine import LintReport
from repro.statics.findings import Finding

__all__ = [
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

_FORMAT_VERSION = 1
_SEP = "\x1f"  # unit separator: cannot appear in rule ids or paths


def fingerprint(finding: Finding) -> str:
    """Line-independent identity of a finding."""
    return _SEP.join((finding.rule, finding.path, finding.message))


def write_baseline(report: LintReport, path: str | Path) -> int:
    """Snapshot *report*'s findings; returns how many were recorded."""
    counts: dict[str, int] = {}
    for f in report.findings:
        key = fingerprint(f)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "version": _FORMAT_VERSION,
        "tool": "tcblint",
        "findings": [
            {"rule": k.split(_SEP)[0], "fingerprint": k, "count": v}
            for k, v in sorted(counts.items())
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(report.findings)


def load_baseline(path: str | Path) -> dict[str, int]:
    """Load a baseline file into a fingerprint -> count budget map."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("tool") != "tcblint":
        raise ValueError(f"{path}: not a tcblint baseline file")
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r}"
        )
    budgets: dict[str, int] = {}
    for entry in data.get("findings", []):
        budgets[entry["fingerprint"]] = int(entry.get("count", 1))
    return budgets


def apply_baseline(report: LintReport, budgets: dict[str, int]) -> None:
    """Drop baselined findings from *report* in place.

    Each fingerprint absorbs at most its budgeted count — extra
    occurrences beyond the snapshot still fail.  ``report.baselined``
    records how many were absorbed.
    """
    remaining = dict(budgets)
    kept: list[Finding] = []
    for f in report.findings:
        key = fingerprint(f)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            report.baselined += 1
        else:
            kept.append(f)
    report.findings[:] = kept
