"""tcblint — AST + dataflow invariant checker for the TCB reproduction.

The test suite can only probe the repo's cross-cutting invariants
pointwise; this package enforces them *structurally*, at commit time.
Syntactic rules (per-node AST visitors):

- additive attention masks come from ``repro.core.masks`` (TCB001),
- all randomness threads an explicit ``np.random.Generator`` (TCB002),
- the discrete-event simulator never reads wall-clock time (TCB003),
- hot paths keep the canonical float64 convention (TCB004),
- no mutable default arguments (TCB005),
- no stray quadratic ``(…, L, L)`` score-matrix allocations (TCB006),
- serving/engine code never swallows exceptions silently (TCB007),
- queue removals go through the overload ledger (TCB008).

Flow-sensitive rules (CFG + dataflow fixpoint, ``repro.statics.cfg`` /
``repro.statics.dataflow``) and interprocedural rules (package call
graph, ``repro.statics.callgraph``):

- every path that takes requests off a queue reaches a ledger terminal
  or re-enqueue before function exit (TCB009),
- sim-clock values never flow into wall-clock APIs or vice versa
  (TCB010),
- no two call sites consume the same named RNG child stream (TCB011),
- raised typed faults always reach a ledgered handler somewhere on the
  call graph (TCB012), and the durability plane's snapshot/restore
  field parity (TCB013).

Run it as ``python -m repro lint`` (or ``make lint``); the tier-1 test
``tests/test_statics_clean.py`` asserts the tree is clean, making every
invariant self-enforcing for future PRs.  See ``docs/statics.md``.
"""

from repro.statics.baseline import apply_baseline, load_baseline, write_baseline
from repro.statics.cfg import CFG, build_cfg, module_cfgs
from repro.statics.checks import ALL_RULES
from repro.statics.dataflow import run_forward
from repro.statics.engine import LintReport, lint_file, lint_package, lint_paths, lint_source
from repro.statics.findings import Finding, Severity
from repro.statics.policy import DEFAULT_POLICY, PathPolicy, RNG_ENTRY_POINTS
from repro.statics.sarif import to_sarif

__all__ = [
    "ALL_RULES",
    "CFG",
    "DEFAULT_POLICY",
    "Finding",
    "LintReport",
    "PathPolicy",
    "RNG_ENTRY_POINTS",
    "Severity",
    "apply_baseline",
    "build_cfg",
    "lint_file",
    "lint_package",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_cfgs",
    "run_forward",
    "to_sarif",
    "write_baseline",
]
