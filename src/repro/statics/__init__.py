"""tcblint — AST-based invariant checker for the TCB reproduction.

The test suite can only probe the repo's cross-cutting invariants
pointwise; this package enforces them *structurally*, at commit time:

- additive attention masks come from ``repro.core.masks`` (TCB001),
- all randomness threads an explicit ``np.random.Generator`` (TCB002),
- the discrete-event simulator never reads wall-clock time (TCB003),
- hot paths keep the canonical float64 convention (TCB004),
- no mutable default arguments (TCB005),
- no stray quadratic ``(…, L, L)`` score-matrix allocations (TCB006),
- serving/engine code never swallows exceptions silently (TCB007).

Run it as ``python -m repro lint`` (or ``make lint``); the tier-1 test
``tests/test_statics_clean.py`` asserts the tree is clean, making every
invariant self-enforcing for future PRs.  See ``docs/statics.md``.
"""

from repro.statics.checks import ALL_RULES
from repro.statics.engine import LintReport, lint_file, lint_package, lint_paths, lint_source
from repro.statics.findings import Finding, Severity
from repro.statics.policy import DEFAULT_POLICY, PathPolicy, RNG_ENTRY_POINTS

__all__ = [
    "ALL_RULES",
    "DEFAULT_POLICY",
    "Finding",
    "LintReport",
    "PathPolicy",
    "RNG_ENTRY_POINTS",
    "Severity",
    "lint_file",
    "lint_package",
    "lint_paths",
    "lint_source",
]
