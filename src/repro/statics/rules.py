"""Rule base class and the AST plumbing shared by every check.

A rule sees a :class:`ModuleContext` — parsed tree plus an import-alias
map — and yields :class:`~repro.statics.findings.Finding` objects.  The
alias map lets checks resolve local names back to canonical dotted
paths (``np.random.default_rng`` → ``numpy.random.default_rng`` even
under ``import numpy.random as npr`` or ``from numpy.random import
default_rng as mk``), so rules match *semantics*, not spelling.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.statics.findings import Finding, Severity

__all__ = [
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "build_alias_map",
    "make_context",
    "resolve",
]

# Top-level modules whose imports we track for resolution.
_TRACKED_ROOTS = ("numpy", "time", "datetime", "random")


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one source file."""

    path: str  # canonical posix path
    tree: ast.AST
    source: str
    aliases: dict[str, str] = field(default_factory=dict)


def build_alias_map(tree: ast.AST) -> dict[str, str]:
    """Map local names to canonical dotted paths of tracked modules."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                root = a.name.split(".", 1)[0]
                if root not in _TRACKED_ROOTS:
                    continue
                if a.asname:
                    aliases[a.asname] = a.name
                else:
                    # ``import numpy.random`` binds only the root name.
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            root = node.module.split(".", 1)[0]
            if root not in _TRACKED_ROOTS:
                continue
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def make_context(source: str, path: str) -> ModuleContext:
    tree = ast.parse(source, filename=path)
    return ModuleContext(
        path=path, tree=tree, source=source, aliases=build_alias_map(tree)
    )


def resolve(ctx: ModuleContext, node: ast.AST) -> Optional[str]:
    """Canonical dotted path of a Name/Attribute chain, if trackable.

    Returns e.g. ``"numpy.random.seed"`` or ``None`` when the chain is
    rooted in something we do not track (locals, method calls, …).
    """
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    base = ctx.aliases.get(cur.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


class Rule:
    """Base class: subclasses set the id/title/severity and ``check``."""

    rule_id: str = "TCB000"
    title: str = ""
    severity: Severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=self.severity,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that needs the whole module set at once.

    Interprocedural rules (call graphs, cross-module stream registries)
    cannot verify a single file in isolation; the engine runs them once
    per lint invocation over every parsed module, after the per-file
    rules.  Findings still land on individual files and pass through
    that file's policy/suppression filters, so ``# tcblint: disable``
    works unchanged.
    """

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Per-file pass: nothing to do; see check_project.
        return iter(())

    def check_project(
        self, contexts: "list[ModuleContext]"
    ) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError
