"""Intraprocedural control-flow graphs for the flow-sensitive rules.

One :class:`CFG` per function (including methods, nested functions and
lambdas are *not* expanded — a nested ``def`` is a single ``def`` node
in its enclosing graph and gets its own CFG from :func:`module_cfgs`).
Nodes are *statements*, not basic blocks: at tcblint's scale the
simplicity is worth more than the constant factor, and rules can attach
findings to a statement's own ``lineno`` directly.

Modelled control flow:

- ``if``/``elif``/``else`` — the test is a ``test`` node with ``true``
  and ``false`` out-edges (the rules' branch-condition refinement hooks
  key on these edge kinds),
- ``while``/``for`` with ``else`` — back edges, ``break`` jumps past the
  ``else`` clause, ``continue`` returns to the test,
- ``try``/``except``/``else``/``finally`` — every statement in a
  ``try`` body gets a conservative ``exc`` edge to each handler entry
  (or to the ``finally`` node when there are no handlers); the
  ``finally`` body is built once and routes both to the fall-through
  successor and, via a ``raise`` edge, to the function exit
  (re-raise / propagating-exception path).  This over-approximates —
  some modelled paths are infeasible — which is the safe direction for
  a linter,
- ``with`` — a ``with`` node followed by the body (suppressed
  exceptions are not modelled),
- ``return`` / ``raise`` — edges to the synthetic exit node with kinds
  ``return`` and ``raise``; analyses that only care about *normal*
  escapes filter on the edge kind,
- ``match`` — one ``case`` edge per arm plus a fall-through edge.

Exceptions from arbitrary expressions outside ``try`` bodies are *not*
modelled (every statement would otherwise have an edge to exit, drowning
the analyses in infeasible paths).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

__all__ = ["CFG", "CFGNode", "Edge", "FunctionNode", "build_cfg", "module_cfgs"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

# Edge kinds that do not represent normal (fall-through) control flow
# into the exit node.
ABNORMAL_EXIT_KINDS = frozenset({"raise"})


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    kind: str = ""  # "", true, false, case, exc, raise, return, break, continue, back


@dataclass
class CFGNode:
    idx: int
    stmt: Optional[ast.AST]  # None for the synthetic entry/exit
    label: str  # entry, exit, stmt, test, def, with, except, finally, return, raise
    succs: list[Edge] = field(default_factory=list)
    preds: list[Edge] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        return getattr(self.stmt, "lineno", 0)


class CFG:
    """Control-flow graph of one function body."""

    ENTRY = 0
    EXIT = 1

    def __init__(self, name: str, func: Optional[FunctionNode] = None):
        self.name = name
        self.func = func
        self.nodes: list[CFGNode] = [
            CFGNode(self.ENTRY, None, "entry"),
            CFGNode(self.EXIT, None, "exit"),
        ]

    # -- construction -------------------------------------------------- #

    def add_node(self, stmt: Optional[ast.AST], label: str) -> int:
        idx = len(self.nodes)
        self.nodes.append(CFGNode(idx, stmt, label))
        return idx

    def add_edge(self, src: int, dst: int, kind: str = "") -> None:
        edge = Edge(src, dst, kind)
        if edge in self.nodes[src].succs:
            return
        self.nodes[src].succs.append(edge)
        self.nodes[dst].preds.append(edge)

    # -- queries -------------------------------------------------------- #

    def __iter__(self) -> Iterator[CFGNode]:
        return iter(self.nodes)

    def has_path(
        self, src: int, dst: int, *, skip_kinds: frozenset[str] = frozenset()
    ) -> bool:
        """Is there a directed path src → dst avoiding ``skip_kinds`` edges?"""
        seen = {src}
        stack = [src]
        while stack:
            cur = stack.pop()
            if cur == dst:
                return True
            for e in self.nodes[cur].succs:
                if e.kind in skip_kinds or e.dst in seen:
                    continue
                seen.add(e.dst)
                stack.append(e.dst)
        return False

    def nodes_at_line(self, lineno: int) -> list[CFGNode]:
        return [n for n in self.nodes if n.lineno == lineno]

    def describe(self) -> list[str]:
        """Readable edge list for shape assertions in tests."""
        out = []
        for n in self.nodes:
            tag = f"{n.idx}:{n.label}" + (f"@{n.lineno}" if n.lineno else "")
            dsts = ", ".join(
                f"{e.dst}" + (f"[{e.kind}]" if e.kind else "") for e in n.succs
            )
            out.append(f"{tag} -> [{dsts}]")
        return out

    def rpo(self) -> list[int]:
        """Reverse postorder from entry (good worklist order)."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(idx: int) -> None:
            stack = [(idx, iter(self.nodes[idx].succs))]
            seen.add(idx)
            while stack:
                cur, it = stack[-1]
                advanced = False
                for e in it:
                    if e.dst not in seen:
                        seen.add(e.dst)
                        stack.append((e.dst, iter(self.nodes[e.dst].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(cur)
                    stack.pop()

        visit(self.ENTRY)
        return list(reversed(order))


# `Pending` edges: (source node, kind) pairs waiting for their target.
_Pending = list[tuple[int, str]]


class _Loop:
    def __init__(self, continue_to: int):
        self.continue_to = continue_to
        self.breaks: _Pending = []


class _Builder:
    def __init__(self, name: str, func: Optional[FunctionNode]):
        self.cfg = CFG(name, func)
        self.loops: list[_Loop] = []
        # Stack of exception-target node lists (handler/finally entries)
        # for enclosing ``try`` bodies.
        self.exc_targets: list[list[int]] = []

    # ------------------------------------------------------------------ #

    def connect(self, pendings: _Pending, dst: int) -> None:
        for src, kind in pendings:
            self.cfg.add_edge(src, dst, kind)

    def new_node(self, stmt: ast.AST, label: str, pendings: _Pending) -> int:
        idx = self.cfg.add_node(stmt, label)
        self.connect(pendings, idx)
        if self.exc_targets and label not in ("except", "finally"):
            for target in self.exc_targets[-1]:
                self.cfg.add_edge(idx, target, "exc")
        return idx

    # ------------------------------------------------------------------ #

    def build(self, stmts: list[ast.stmt], pendings: _Pending) -> _Pending:
        for stmt in stmts:
            if not pendings:
                # Unreachable code after return/raise/break: still build
                # nodes (rules may want them) but leave them islanded.
                pass
            pendings = self.build_stmt(stmt, pendings)
        return pendings

    def build_stmt(self, stmt: ast.stmt, pendings: _Pending) -> _Pending:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, pendings)
        if isinstance(stmt, (ast.While,)):
            return self._build_while(stmt, pendings)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_for(stmt, pendings)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, pendings)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            n = self.new_node(stmt, "with", pendings)
            return self.build(stmt.body, [(n, "")])
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, pendings)
        if isinstance(stmt, ast.Return):
            n = self.new_node(stmt, "return", pendings)
            self.cfg.add_edge(n, CFG.EXIT, "return")
            return []
        if isinstance(stmt, ast.Raise):
            n = self.new_node(stmt, "raise", pendings)
            if self.exc_targets:
                for target in self.exc_targets[-1]:
                    self.cfg.add_edge(n, target, "exc")
            else:
                self.cfg.add_edge(n, CFG.EXIT, "raise")
            return []
        if isinstance(stmt, ast.Break):
            n = self.new_node(stmt, "stmt", pendings)
            if self.loops:
                self.loops[-1].breaks.append((n, "break"))
            return []
        if isinstance(stmt, ast.Continue):
            n = self.new_node(stmt, "stmt", pendings)
            if self.loops:
                self.cfg.add_edge(n, self.loops[-1].continue_to, "continue")
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            n = self.new_node(stmt, "def", pendings)
            return [(n, "")]
        n = self.new_node(stmt, "stmt", pendings)
        return [(n, "")]

    def _build_if(self, stmt: ast.If, pendings: _Pending) -> _Pending:
        t = self.new_node(stmt, "test", pendings)
        out = self.build(stmt.body, [(t, "true")])
        if stmt.orelse:
            out += self.build(stmt.orelse, [(t, "false")])
        else:
            out += [(t, "false")]
        return out

    def _build_while(self, stmt: ast.While, pendings: _Pending) -> _Pending:
        t = self.new_node(stmt, "test", pendings)
        loop = _Loop(continue_to=t)
        self.loops.append(loop)
        body_out = self.build(stmt.body, [(t, "true")])
        self.connect(body_out, t)  # back edge
        self.loops.pop()
        if stmt.orelse:
            # ``else`` runs only when the loop exits via the test.
            out = self.build(stmt.orelse, [(t, "false")])
        else:
            out = [(t, "false")]
        return out + loop.breaks

    def _build_for(self, stmt: ast.For | ast.AsyncFor, pendings: _Pending) -> _Pending:
        t = self.new_node(stmt, "test", pendings)  # the iterator probe
        loop = _Loop(continue_to=t)
        self.loops.append(loop)
        body_out = self.build(stmt.body, [(t, "true")])
        self.connect(body_out, t)
        self.loops.pop()
        if stmt.orelse:
            out = self.build(stmt.orelse, [(t, "false")])
        else:
            out = [(t, "false")]
        return out + loop.breaks

    def _build_match(self, stmt: ast.Match, pendings: _Pending) -> _Pending:
        t = self.new_node(stmt, "test", pendings)
        out: _Pending = []
        exhaustive = False
        for case in stmt.cases:
            out += self.build(case.body, [(t, "case")])
            if isinstance(case.pattern, ast.MatchAs) and case.pattern.pattern is None:
                exhaustive = True  # a bare wildcard arm
        if not exhaustive:
            out += [(t, "")]
        return out

    def _build_try(self, stmt: ast.Try, pendings: _Pending) -> _Pending:
        has_finally = bool(stmt.finalbody)
        fnode = self.cfg.add_node(stmt, "finally") if has_finally else None

        handler_entries = [
            self.cfg.add_node(h, "except") for h in stmt.handlers
        ]

        # Exceptions raised in the body land at the handlers; with no
        # handlers they flow straight into ``finally`` (or outward).
        if handler_entries:
            self.exc_targets.append(handler_entries)
        elif fnode is not None:
            self.exc_targets.append([fnode])
        else:
            self.exc_targets.append(
                self.exc_targets[-1] if self.exc_targets else []
            )
        body_out = self.build(stmt.body, pendings)
        self.exc_targets.pop()

        # ``else`` runs after a normal body completion.
        if stmt.orelse:
            body_out = self.build(stmt.orelse, body_out)

        # Handler bodies; exceptions *inside a handler* propagate to the
        # finally node (or outward).
        after: _Pending = list(body_out)
        if fnode is not None:
            self.exc_targets.append([fnode])
        for entry in handler_entries:
            after += self.build(
                self.cfg.nodes[entry].stmt.body, [(entry, "")]  # type: ignore[union-attr]
            )
        if fnode is not None:
            self.exc_targets.pop()

        if fnode is None:
            # An uncaught exception (no matching handler) propagates;
            # modelled by the handlers' own exc edges upward, nothing
            # extra to wire here.
            return after

        # Route every completion of body/else/handlers through finally.
        self.connect(after, fnode)
        fin_out = self.build(stmt.finalbody, [(fnode, "")])
        # The finally body also runs on the exceptional/return path and
        # then *leaves the function*; model with a raise edge to exit.
        for src, _kind in fin_out:
            self.cfg.add_edge(src, CFG.EXIT, "raise")
        return fin_out


def build_cfg(func: FunctionNode, name: Optional[str] = None) -> CFG:
    """Build the CFG of one function's body."""
    b = _Builder(name or func.name, func)
    out = b.build(func.body, [(CFG.ENTRY, "")])
    b.connect(out, CFG.EXIT)
    return b.cfg


def module_cfgs(tree: ast.AST) -> list[tuple[str, FunctionNode, CFG]]:
    """CFGs for every function in a module, nested and methods included.

    Returns ``(qualified_name, func_node, cfg)`` triples; the qualified
    name is dotted through enclosing classes/functions
    (``TCBServer.submit``, ``outer.<locals>.inner`` is simplified to
    ``outer.inner``).
    """
    out: list[tuple[str, FunctionNode, CFG]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                out.append((qual, child, build_cfg(child, qual)))
                visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out
