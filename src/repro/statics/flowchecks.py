"""The flow-sensitive and project-wide tcblint rules (TCB009–TCB013).

TCB009 and TCB010 are per-file dataflow rules over the CFGs built by
:mod:`repro.statics.cfg`; TCB011 and TCB012 are *project* rules that see
every module of the lint run at once (TCB012 through the call graph in
:mod:`repro.statics.callgraph`).  ``docs/statics.md`` has the
rule-authoring guide; the short version of each policy:

- **TCB009 ledger escape** — a batch removed from the wait queue via
  ``.take()`` / ``.remove_served()`` must, on *every* normal path to
  function exit, land in a ledger terminal
  (``metrics.{served,rejected,expired,abandoned}.extend/append``), be
  re-enqueued (``requeue``/``abandon``), or be handed off element-wise
  into a tracked container.  This is the dataflow upgrade of the
  syntactic TCB008: TCB008 bans *unsanctioned call sites*, TCB009
  proves the sanctioned ones actually ledger on every branch.
- **TCB010 sim-time taint** — values read from wall-clock APIs must not
  mix with simulated-clock values (``now`` parameters) in arithmetic,
  nor flow into sim-time APIs (``queue.expire(...)``), nor vice versa
  into wall-clock APIs (``time.sleep``).  This covers the fig16
  scheduler files that TCB003 deliberately waives: they may *read* the
  wall clock, but the reading must never leak into simulated time.
- **TCB011 RNG-stream aliasing** — two call sites keying
  ``np.random.SeedSequence`` tuples with the same structural
  fingerprint consume the same child stream and produce correlated
  draws; every stream key must carry a distinct domain constant.
- **TCB012 typed-fault escape** — a raised ``BatchFailure`` /
  ``EngineDown`` / ``BackpressureError`` must have a *ledgered* handler
  (one that uses the bound exception or re-raises) somewhere on the
  call graph, or be a documented API escape (named in the raising
  function's / class's / module's docstring).  Handlers that catch a
  typed fault and ignore its payload are flagged directly — the
  ``.requests`` they drop silently break the conservation invariant.
- **TCB013 snapshot/restore parity** — every field of the durability
  ``Snapshot`` dataclass must be read back by restore code, and every
  snapshot attribute restore code reads must be a declared field.  A
  field captured but never restored silently drops state across a warm
  restart (the crash-consistency bug class); a read of an undeclared
  field is a stale-schema AttributeError waiting for the next crash.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.statics.callgraph import CallGraph, build_call_graph
from repro.statics.cfg import CFG, CFGNode, Edge, build_cfg, module_cfgs
from repro.statics.dataflow import run_forward
from repro.statics.findings import Finding, Severity
from repro.statics.rules import ModuleContext, ProjectRule, Rule, resolve

__all__ = [
    "FLOW_RULES",
    "LedgerEscape",
    "RngStreamAliasing",
    "SimTimeTaint",
    "SnapshotRestoreParity",
    "TypedFaultEscape",
]


def _expr_key(node: ast.AST) -> Optional[str]:
    """Stable key for a Name/Attribute chain (``packing.packed``)."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _own_exprs(node: CFGNode) -> list[ast.AST]:
    """The expressions a CFG node *itself* evaluates.

    Compound statements appear as ``test``/``with``/``finally`` nodes
    whose ``stmt`` is the whole AST subtree; only the header expression
    belongs to the node — the body statements are separate CFG nodes.
    """
    stmt = node.stmt
    if stmt is None or node.label in ("def", "except", "finally"):
        return []
    if node.label == "test":
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, ast.Match):
            return [stmt.subject]
        return []
    if node.label == "with":
        return [item.context_expr for item in stmt.items]  # type: ignore[attr-defined]
    return [stmt]


def _own_stmt_walk(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        n = stack.pop()
        yield n
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(n))


# ---------------------------------------------------------------------- #
# TCB009 — ledger escape
# ---------------------------------------------------------------------- #

# A taint item: requests removed from the queue that still owe a ledger
# entry.  ``key`` is the expression the batch is reachable through.
_Taint = tuple[str, int, int, str]  # (key, line, col, removal method)


class LedgerEscape(Rule):
    """TCB009 — every queue removal reaches a ledger terminal on all paths."""

    rule_id = "TCB009"
    title = "queue removal may escape the conservation ledger"
    severity = Severity.ERROR

    _SCOPE = (
        "repro/serving/",
        "repro/overload/",
        "repro/faults/",
        "repro/scheduling/",
    )
    # Queue methods whose result/argument owes a terminal ledger entry.
    _REMOVALS = frozenset({"take", "remove_served"})
    # metrics.<terminal>.extend(...) discharges the obligation.
    _TERMINALS = frozenset({"served", "rejected", "expired", "abandoned"})
    # Re-enqueue / container handoff methods that transfer ownership.
    _HANDOFFS = frozenset({"extend", "append", "add", "put", "requeue", "abandon"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.path.startswith(self._SCOPE):
            return
        for qual, fn, cfg in module_cfgs(ctx.tree):
            yield from self._check_function(ctx, qual, fn, cfg)

    # -- helpers -------------------------------------------------------- #

    def _removal_call(self, call: ast.Call) -> Optional[str]:
        f = call.func
        if not isinstance(f, ast.Attribute) or f.attr not in self._REMOVALS:
            return None
        # The queue's own internals (``self.take``) do their own
        # bookkeeping; only *callers* owe a ledger entry.
        if isinstance(f.value, ast.Name) and f.value.id == "self":
            return None
        return f.attr

    def _kill_keys(self, expr: ast.AST) -> set[str]:
        """Argument keys discharged by ledger/handoff calls in *expr*."""
        killed: set[str] = set()
        for n in ast.walk(expr):
            if not (isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)):
                continue
            meth = n.func.attr
            if meth not in self._HANDOFFS:
                continue
            for a in n.args:
                k = _expr_key(a)
                if k is not None:
                    killed.add(k)
        return killed

    @staticmethod
    def _loop_hands_off(stmt: ast.For | ast.AsyncFor) -> bool:
        """Does the loop pass its target variable into any call?"""
        if not isinstance(stmt.target, ast.Name):
            return False
        var = stmt.target.id
        for body_stmt in stmt.body:
            for n in ast.walk(body_stmt):
                if isinstance(n, ast.Call):
                    for a in [*n.args, *[kw.value for kw in n.keywords]]:
                        for sub in ast.walk(a):
                            if isinstance(sub, ast.Name) and sub.id == var:
                                return True
        return False

    # -- dataflow ------------------------------------------------------- #

    def _transfer(self, node: CFGNode, state: frozenset) -> frozenset:
        exprs = _own_exprs(node)
        if not exprs:
            return state
        s = set(state)
        stmt = node.stmt

        # Per-element handoff: `for r in batch: container.append(f(r))`.
        if (
            node.label == "test"
            and isinstance(stmt, (ast.For, ast.AsyncFor))
            and self._loop_hands_off(stmt)
        ):
            k = _expr_key(stmt.iter)
            if k is not None:
                s = {t for t in s if t[0] != k}

        # Ledger terminals and handoffs discharge by argument key.
        killed = set()
        for e in exprs:
            killed |= self._kill_keys(e)
        if killed:
            s = {t for t in s if t[0] not in killed}

        # Assignments: rename aliases, clobber rebound names, gen takes.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            target = stmt.targets[0].id
            src_key = _expr_key(stmt.value)
            moved = [t for t in s if src_key is not None and t[0] == src_key]
            s = {t for t in s if t[0] != target and t not in moved}
            s |= {(target, t[1], t[2], t[3]) for t in moved}
            if isinstance(stmt.value, ast.Call) and self._removal_call(stmt.value):
                call = stmt.value
                s.add(
                    (target, call.lineno, call.col_offset, self._removal_call(call))
                )

        # remove_served(batch): the *argument* owes the ledger entry.
        for e in exprs:
            for n in ast.walk(e):
                if (
                    isinstance(n, ast.Call)
                    and self._removal_call(n) == "remove_served"
                    and n.args
                ):
                    k = _expr_key(n.args[0])
                    if k is not None:
                        s.add((k, n.lineno, n.col_offset, "remove_served"))
        return frozenset(s)

    @staticmethod
    def _edge_refine(state: frozenset, src: CFGNode, edge: Edge) -> frozenset:
        """Branch-condition refinement: an empty batch owes nothing.

        On the false edge of ``if batch:`` (or the true edge of
        ``if not batch:``) the batch is empty, so its obligation dies.
        """
        if src.label != "test" or not isinstance(src.stmt, (ast.If, ast.While)):
            return state
        test = src.stmt.test
        key: Optional[str] = None
        if edge.kind == "false":
            key = _expr_key(test)
        elif (
            edge.kind == "true"
            and isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
        ):
            key = _expr_key(test.operand)
        if key is None:
            return state
        return frozenset(t for t in state if t[0] != key)

    def _check_function(
        self, ctx: ModuleContext, qual: str, fn: ast.AST, cfg: CFG
    ) -> Iterator[Finding]:
        # Cheap pre-filter: no removal calls, no analysis.
        has_removal = any(
            isinstance(n, ast.Call) and self._removal_call(n)
            for n in _own_stmt_walk(fn)
        )
        if has_removal:
            yield from self._check_discarded_takes(ctx, qual, fn)
            _, out = run_forward(
                cfg,
                init=frozenset(),
                bottom=frozenset(),
                transfer=self._transfer,
                join=lambda a, b: a | b,
                edge_refine=self._edge_refine,
            )
            live: set[_Taint] = set()
            for e in cfg.nodes[CFG.EXIT].preds:
                if e.kind in ("raise", "exc"):
                    continue
                live |= self._edge_refine(out[e.src], cfg.nodes[e.src], e)
            for key, line, col, meth in sorted(live):
                yield Finding(
                    rule=self.rule_id,
                    path=ctx.path,
                    line=line,
                    col=col,
                    severity=self.severity,
                    message=(
                        f"requests removed via .{meth}() may reach the end of "
                        f"{qual}() without a ledger terminal on some path; "
                        "every removal must land in metrics.served/rejected/"
                        "expired/abandoned, be re-enqueued (requeue/abandon), "
                        "or be handed off element-wise — otherwise the "
                        "conservation invariant silently loses requests"
                    ),
                )

    def _check_discarded_takes(
        self, ctx: ModuleContext, qual: str, fn: ast.AST
    ) -> Iterator[Finding]:
        """A ``.take()`` whose result is not even bound is a sure leak."""
        parents: dict[ast.AST, ast.AST] = {}
        for parent in _own_stmt_walk(fn):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for n in _own_stmt_walk(fn):
            if not (isinstance(n, ast.Call) and self._removal_call(n) == "take"):
                continue
            p = parents.get(n)
            bound = (
                isinstance(p, ast.Assign)
                and len(p.targets) == 1
                and isinstance(p.targets[0], ast.Name)
            )
            handed_off = (
                isinstance(p, ast.Call)
                and isinstance(p.func, ast.Attribute)
                and p.func.attr in self._HANDOFFS
                and n in p.args
            )
            if not bound and not handed_off:
                yield Finding(
                    rule=self.rule_id,
                    path=ctx.path,
                    line=n.lineno,
                    col=n.col_offset,
                    severity=self.severity,
                    message=(
                        f"result of .take() is discarded in {qual}(); the "
                        "removed requests never reach any ledger terminal"
                    ),
                )


# ---------------------------------------------------------------------- #
# TCB010 — sim-time taint
# ---------------------------------------------------------------------- #


class SimTimeTaint(Rule):
    """TCB010 — wall-clock and simulated-time values never mix."""

    rule_id = "TCB010"
    title = "wall-clock value mixed with simulated time"
    severity = Severity.ERROR

    _SCOPE = ("repro/serving/", "repro/scheduling/", "repro/obs/", "repro/overload/")
    # Wall-clock sources (same set TCB003 bans syntactically; here they
    # are *sources of taint*, so the fig16 files TCB003 waives are still
    # proven not to leak readings into simulated time).
    _WALL_SOURCES = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.date.today",
        }
    )
    # Parameters that carry the simulated clock by convention.
    _SIM_PARAMS = frozenset({"now", "sim_now"})
    # Sim-time APIs a wall value must never reach (first positional arg
    # is a simulated timestamp).
    _SIM_SINKS = frozenset({"expire", "waiting", "queue_delay", "slack"})
    # Wall-clock APIs a simulated value must never reach.
    _WALL_SINKS = frozenset(
        {
            "time.sleep",
            "time.strftime",
            "time.localtime",
            "time.gmtime",
            "datetime.datetime.fromtimestamp",
            "datetime.date.fromtimestamp",
        }
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.path.startswith(self._SCOPE):
            return
        for qual, fn, cfg in module_cfgs(ctx.tree):
            yield from self._check_function(ctx, qual, fn, cfg)

    # -- domain evaluation ---------------------------------------------- #

    def _domains(
        self, ctx: ModuleContext, state: frozenset, expr: ast.AST
    ) -> frozenset:
        """The clock domains an expression *may* carry.

        A variable merged from a wall branch and a sim branch carries
        both; sinks treat that as a may-flow (flag it), while the
        mix/compare checks require two *definite* different domains to
        avoid phi-node double-reporting.
        """
        key = _expr_key(expr)
        if key is not None:
            return frozenset(d for k, d in state if k == key)
        if isinstance(expr, ast.Call):
            q = resolve(ctx, expr.func)
            if q in self._WALL_SOURCES:
                return frozenset({"wall"})
            if isinstance(expr.func, ast.Name) and expr.func.id in ("min", "max"):
                out: frozenset = frozenset()
                for a in expr.args:
                    out |= self._domains(ctx, state, a)
                return out
            return frozenset()
        if isinstance(expr, ast.BinOp):
            return self._domains(ctx, state, expr.left) | self._domains(
                ctx, state, expr.right
            )
        if isinstance(expr, ast.UnaryOp):
            return self._domains(ctx, state, expr.operand)
        if isinstance(expr, ast.IfExp):
            return self._domains(ctx, state, expr.body) | self._domains(
                ctx, state, expr.orelse
            )
        return frozenset()

    def _definite(
        self, ctx: ModuleContext, state: frozenset, expr: ast.AST
    ) -> Optional[str]:
        doms = self._domains(ctx, state, expr)
        return next(iter(doms)) if len(doms) == 1 else None

    # -- dataflow ------------------------------------------------------- #

    def _initial(self, fn: ast.AST) -> frozenset:
        args = getattr(fn, "args", None)
        if args is None:
            return frozenset()
        names = [
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if a.arg in self._SIM_PARAMS
        ]
        return frozenset((n, "sim") for n in names)

    def _transfer(self, ctx: ModuleContext):
        def transfer(node: CFGNode, state: frozenset) -> frozenset:
            stmt = node.stmt
            exprs = _own_exprs(node)
            if not exprs:
                return state
            target: Optional[str] = None
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = _expr_key(stmt.targets[0])
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target = _expr_key(stmt.target)
                value = stmt.value
            elif isinstance(stmt, ast.AugAssign):
                target = _expr_key(stmt.target)
                value = stmt.value
            if target is None:
                return state
            doms = (
                self._domains(ctx, state, value)
                if value is not None
                else frozenset()
            )
            if isinstance(stmt, ast.AugAssign) and not doms:
                # x += dt keeps x's old domain.
                return state
            s = {t for t in state if t[0] != target}
            s |= {(target, d) for d in doms}
            return frozenset(s)

        return transfer

    def _check_function(
        self, ctx: ModuleContext, qual: str, fn: ast.AST, cfg: CFG
    ) -> Iterator[Finding]:
        # Cheap pre-filter: functions that never touch a wall source or
        # wall sink cannot violate the rule.
        touches = False
        for n in _own_stmt_walk(fn):
            if isinstance(n, (ast.Attribute, ast.Name)):
                q = resolve(ctx, n)
                if q in self._WALL_SOURCES or q in self._WALL_SINKS:
                    touches = True
                    break
        if not touches:
            return
        in_state, _ = run_forward(
            cfg,
            init=self._initial(fn),
            bottom=frozenset(),
            transfer=self._transfer(ctx),
            join=lambda a, b: a | b,
        )
        seen: set[tuple[int, int, str]] = set()
        for node in cfg.nodes:
            state = in_state[node.idx]
            for e in _own_exprs(node):
                for f in self._scan_expr(ctx, qual, state, e):
                    fp = (f.line, f.col, f.message)
                    if fp not in seen:
                        seen.add(fp)
                        yield f

    def _scan_expr(
        self, ctx: ModuleContext, qual: str, state: frozenset, expr: ast.AST
    ) -> Iterator[Finding]:
        for n in ast.walk(expr):
            if isinstance(n, ast.BinOp):
                left = self._definite(ctx, state, n.left)
                right = self._definite(ctx, state, n.right)
                if left and right and left != right:
                    yield self.finding(
                        ctx,
                        n,
                        f"wall-clock and simulated-time values mixed in one "
                        f"expression in {qual}(); keep the domains separate "
                        "(wall readings may only measure overhead, never "
                        "advance or compare simulated time)",
                    )
            elif isinstance(n, ast.Compare):
                doms = [self._definite(ctx, state, n.left)] + [
                    self._definite(ctx, state, c) for c in n.comparators
                ]
                known = {d for d in doms if d}
                if len(known) > 1:
                    yield self.finding(
                        ctx,
                        n,
                        f"comparison between wall-clock and simulated-time "
                        f"values in {qual}(); the two clocks are not on the "
                        "same axis",
                    )
            elif isinstance(n, ast.Call):
                q = resolve(ctx, n.func)
                if q in self._WALL_SINKS:
                    for a in n.args:
                        if "sim" in self._domains(ctx, state, a):
                            yield self.finding(
                                ctx,
                                n,
                                f"simulated-time value flows into wall-clock "
                                f"API {q} in {qual}()",
                            )
                elif (
                    isinstance(n.func, ast.Attribute)
                    and n.func.attr in self._SIM_SINKS
                ):
                    for a in n.args:
                        if "wall" in self._domains(ctx, state, a):
                            yield self.finding(
                                ctx,
                                n,
                                f"wall-clock value flows into sim-time API "
                                f".{n.func.attr}() in {qual}(); the simulator "
                                "clock must advance only through simulated "
                                "events",
                            )


# ---------------------------------------------------------------------- #
# TCB011 — RNG-stream aliasing (project rule)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class _StreamSite:
    path: str
    line: int
    col: int
    fingerprint: tuple[str, ...]


class RngStreamAliasing(ProjectRule):
    """TCB011 — no two call sites key the same SeedSequence stream."""

    rule_id = "TCB011"
    title = "aliased RNG stream key"
    severity = Severity.ERROR

    _SCOPE = ("repro/",)

    @staticmethod
    def _module_int_consts(tree: ast.AST) -> dict[str, int]:
        out: dict[str, int] = {}
        for stmt in getattr(tree, "body", []):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, int)
                and not isinstance(value.value, bool)
            ):
                out[target.id] = value.value
        return out

    def _element_fp(self, e: ast.AST, consts: dict[str, int]) -> str:
        if isinstance(e, ast.Constant) and isinstance(e.value, (int, str)):
            return repr(e.value)
        if isinstance(e, ast.Name) and e.id in consts:
            return repr(consts[e.id])
        return "*"

    def check_project(
        self, contexts: Sequence[ModuleContext]
    ) -> Iterator[Finding]:
        sites: list[_StreamSite] = []
        for ctx in contexts:
            if not ctx.path.startswith(self._SCOPE):
                continue
            consts = self._module_int_consts(ctx.tree)
            for n in ast.walk(ctx.tree):
                if not isinstance(n, ast.Call):
                    continue
                if resolve(ctx, n.func) != "numpy.random.SeedSequence":
                    continue
                if not n.args or not isinstance(n.args[0], ast.Tuple):
                    continue
                fp = tuple(
                    self._element_fp(e, consts) for e in n.args[0].elts
                )
                sites.append(
                    _StreamSite(ctx.path, n.lineno, n.col_offset, fp)
                )
        groups: dict[tuple[str, ...], list[_StreamSite]] = {}
        for s in sites:
            groups.setdefault(s.fingerprint, []).append(s)
        for fp, members in sorted(groups.items()):
            if len(members) < 2:
                continue
            for site in members:
                others = ", ".join(
                    f"{m.path}:{m.line}" for m in members if m is not site
                )
                fp_str = "(" + ", ".join(fp) + ")"
                yield Finding(
                    rule=self.rule_id,
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    severity=self.severity,
                    message=(
                        f"SeedSequence stream key {fp_str} aliases the "
                        f"stream consumed at {others}; correlated draws "
                        "break replay independence — add a distinct integer "
                        "stream-domain constant to the key tuple"
                    ),
                )


# ---------------------------------------------------------------------- #
# TCB012 — typed-fault escape (project rule)
# ---------------------------------------------------------------------- #


class TypedFaultEscape(ProjectRule):
    """TCB012 — typed faults always meet a ledgered handler."""

    rule_id = "TCB012"
    title = "typed fault escapes without a ledgered handler"
    severity = Severity.ERROR

    _SCOPE = ("repro/serving/", "repro/engine/", "repro/faults/", "repro/overload/")
    _FAULT_NAMES = frozenset(
        {"FaultOutcome", "BatchFailure", "EngineDown", "BackpressureError"}
    )
    # Canonical hierarchy, for lint runs where the defining module is
    # not part of the analyzed set (single-file fixtures).
    _CANON_BASES = {
        "repro.faults.outcomes.BatchFailure": "repro.faults.outcomes.FaultOutcome",
        "repro.faults.outcomes.EngineDown": "repro.faults.outcomes.FaultOutcome",
        "repro.faults.outcomes.FaultOutcome": "Exception",
        "repro.overload.backpressure.BackpressureError": "RuntimeError",
    }

    def _is_typed_fault(self, graph: CallGraph, qual: str) -> bool:
        seen: set[str] = set()
        stack = [qual]
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            if c.rsplit(".", 1)[-1] in self._FAULT_NAMES:
                return True
            if c in graph.classes:
                stack.extend(graph.classes[c].bases)
            if c in self._CANON_BASES:
                stack.append(self._CANON_BASES[c])
        return False

    def _catches(self, graph: CallGraph, exc: str, caught: str) -> bool:
        """Does a handler for *caught* intercept a raised *exc*?"""
        if caught.rsplit(".", 1)[-1] in ("Exception", "BaseException", "RuntimeError"):
            return True
        seen: set[str] = set()
        stack = [exc]
        while stack:
            c = stack.pop()
            if c == caught or c.rsplit(".", 1)[-1] == caught.rsplit(".", 1)[-1]:
                return True
            if c in seen:
                continue
            seen.add(c)
            if c in graph.classes:
                stack.extend(graph.classes[c].bases)
            if c in self._CANON_BASES:
                stack.append(self._CANON_BASES[c])
        return False

    @staticmethod
    def _docstrings(
        graph: CallGraph, contexts: Sequence[ModuleContext], func: str
    ) -> list[str]:
        out: list[str] = []
        info = graph.functions.get(func)
        if info is None:
            return out
        doc = ast.get_docstring(info.node)
        if doc:
            out.append(doc)
        if info.cls and info.cls in graph.classes:
            cdoc = ast.get_docstring(graph.classes[info.cls].node)
            if cdoc:
                out.append(cdoc)
        for ctx in contexts:
            if ctx.path == info.path:
                mdoc = ast.get_docstring(ctx.tree)
                if mdoc:
                    out.append(mdoc)
                break
        return out

    def check_project(
        self, contexts: Sequence[ModuleContext]
    ) -> Iterator[Finding]:
        graph = build_call_graph(contexts)

        # Part A: handlers that swallow a typed fault's payload.
        for handlers in graph.handlers.values():
            for h in handlers:
                if not h.path.startswith(self._SCOPE):
                    continue
                typed = [
                    t for t in h.types if self._is_typed_fault(graph, t)
                ]
                if not typed or h.uses_bound or h.reraises:
                    continue
                names = ", ".join(t.rsplit(".", 1)[-1] for t in typed)
                yield Finding(
                    rule=self.rule_id,
                    path=h.path,
                    line=h.lineno,
                    col=h.col,
                    severity=self.severity,
                    message=(
                        f"handler catches typed fault {names} but never uses "
                        "the bound exception; its .requests payload is "
                        "silently dropped from the conservation ledger — "
                        "bind the exception and ledger/requeue its requests, "
                        "or re-raise"
                    ),
                )

        # Part B: raises with no ledgered handler anywhere on the graph.
        for site in graph.raises:
            if not site.path.startswith(self._SCOPE):
                continue
            if not self._is_typed_fault(graph, site.exc):
                continue
            holders = {site.func} | graph.transitive_callers(site.func)
            handled = any(
                self._catches(graph, site.exc, t)
                and (h.uses_bound or h.reraises)
                for holder in holders
                for h in graph.handlers.get(holder, ())
                for t in h.types
            )
            if handled:
                continue
            exc_name = site.exc.rsplit(".", 1)[-1]
            if any(
                exc_name in doc
                for doc in self._docstrings(graph, contexts, site.func)
            ):
                continue  # documented API escape (e.g. BackpressureError)
            yield Finding(
                rule=self.rule_id,
                path=site.path,
                line=site.lineno,
                col=site.col,
                severity=self.severity,
                message=(
                    f"raise of {exc_name} in {site.func}() has no ledgered "
                    "handler on any caller chain and is not a documented "
                    "API escape; an escaping typed fault loses its "
                    ".requests from the conservation ledger — add a handler "
                    "that uses the bound exception, or document the escape "
                    "in the raising function's docstring"
                ),
            )


# ---------------------------------------------------------------------- #
# TCB013 — snapshot/restore field parity (project rule)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class _FieldSite:
    path: str
    line: int
    col: int


class SnapshotRestoreParity(ProjectRule):
    """TCB013 — durability Snapshot fields pair with restore reads."""

    rule_id = "TCB013"
    title = "snapshot/restore field parity"
    severity = Severity.ERROR

    # The durability plane's crash-consistency claim (docs/recovery.md)
    # is exactly "snapshot ∘ restore == identity on serving state"; a
    # Snapshot field nobody reads back is state silently dropped across
    # every warm restart, and a restore read of an undeclared field is
    # a schema drift that only surfaces at the next real crash.
    _SCOPE = ("repro/durability/",)
    _CLASS = "Snapshot"
    # Attribute chains whose value yields a snapshot, for inferring
    # which local names hold one (``snap = journal.latest_snapshot``).
    _PRODUCERS = frozenset({"latest_snapshot"})

    @staticmethod
    def _annotation_names(node: Optional[ast.expr]) -> set[str]:
        """Bare names mentioned anywhere in an annotation expression."""
        if node is None:
            return set()
        out: set[str] = set()
        for n in ast.walk(node):
            if isinstance(n, ast.Name):
                out.add(n.id)
            elif isinstance(n, ast.Constant) and isinstance(n.value, str):
                # ``from __future__ import annotations`` / quoted annots.
                try:
                    out |= SnapshotRestoreParity._annotation_names(
                        ast.parse(n.value, mode="eval").body
                    )
                except SyntaxError:
                    pass
        return out

    def _class_members(
        self, ctx: ModuleContext
    ) -> Optional[tuple[dict[str, _FieldSite], set[str]]]:
        """(declared fields with sites, all attribute names) of Snapshot."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or node.name != self._CLASS:
                continue
            fields: dict[str, _FieldSite] = {}
            members: set[str] = set()
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields[stmt.target.id] = _FieldSite(
                        ctx.path, stmt.lineno, stmt.col_offset
                    )
                    members.add(stmt.target.id)
                elif isinstance(stmt, ast.Assign):
                    for t in stmt.targets:
                        if isinstance(t, ast.Name):
                            members.add(t.id)
                elif isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    members.add(stmt.name)
            return fields, members
        return None

    def _snapshot_names(self, ctx: ModuleContext) -> set[str]:
        """Local names bound to a Snapshot instance in this module."""
        names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = list(node.args.args) + list(node.args.kwonlyargs)
                for a in args:
                    if self._CLASS in self._annotation_names(a.annotation):
                        names.add(a.arg)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if self._CLASS in self._annotation_names(node.annotation):
                    names.add(node.target.id)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if not isinstance(target, ast.Name):
                    continue
                if isinstance(value, ast.Call):
                    value = value.func
                if (
                    isinstance(value, ast.Attribute)
                    and value.attr in self._PRODUCERS
                ):
                    names.add(target.id)
        return names

    def check_project(
        self, contexts: Sequence[ModuleContext]
    ) -> Iterator[Finding]:
        scoped = [
            c for c in contexts if c.path.startswith(self._SCOPE)
        ] or [c for c in contexts if self._class_members(c) is not None]
        fields: Optional[dict[str, _FieldSite]] = None
        members: set[str] = set()
        for ctx in scoped:
            got = self._class_members(ctx)
            if got is not None:
                fields, members = got
                break
        if fields is None:
            return  # no Snapshot class in this lint run

        read: set[str] = set()
        unknown: list[tuple[_FieldSite, str]] = []
        for ctx in scoped:
            bound = self._snapshot_names(ctx)
            if not bound:
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                if not (
                    isinstance(node.value, ast.Name)
                    and node.value.id in bound
                ):
                    continue
                if node.attr in fields:
                    read.add(node.attr)
                elif node.attr not in members:
                    unknown.append(
                        (
                            _FieldSite(ctx.path, node.lineno, node.col_offset),
                            node.attr,
                        )
                    )

        for name, site in sorted(fields.items()):
            if name in read:
                continue
            yield Finding(
                rule=self.rule_id,
                path=site.path,
                line=site.line,
                col=site.col,
                severity=self.severity,
                message=(
                    f"Snapshot field {name!r} is captured at checkpoint "
                    "but never read back by restore code; state it holds "
                    "is silently dropped across every warm restart — "
                    "apply it in restore_state (or remove the field)"
                ),
            )
        for site, name in unknown:
            yield Finding(
                rule=self.rule_id,
                path=site.path,
                line=site.line,
                col=site.col,
                severity=self.severity,
                message=(
                    f"restore code reads snapshot attribute {name!r} which "
                    "is not a declared Snapshot field; the schema drifted — "
                    "declare the field in Snapshot (and capture it) or "
                    "drop the read"
                ),
            )


FLOW_RULES: tuple[Rule, ...] = (
    LedgerEscape(),
    SimTimeTaint(),
    RngStreamAliasing(),
    TypedFaultEscape(),
    SnapshotRestoreParity(),
)
