"""Generic forward-dataflow fixpoint engine over :mod:`repro.statics.cfg`.

A rule supplies three callables and gets per-node input/output states:

- ``transfer(node, state) -> state`` — the effect of executing one CFG
  node,
- ``join(a, b) -> state`` — merge states at control-flow joins (must be
  monotone: the analysis iterates to a fixpoint),
- ``edge_refine(state, src_node, edge) -> state`` *(optional)* — refine
  the state flowing along one edge.  This is how branch conditions feed
  the analysis: e.g. TCB009 kills a taint on the ``false`` edge of
  ``if victims:`` (on that path the victim list is empty, so there is
  nothing to ledger).

States must be immutable values with ``==`` (frozensets of taint tuples
in the shipped rules).  The engine iterates in reverse postorder with a
worklist; an iteration cap guards against a non-monotone transfer
looping forever (it raises, loudly — a broken rule must not pass
silently).
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

from repro.statics.cfg import CFG, CFGNode, Edge

__all__ = ["FixpointError", "run_forward"]

S = TypeVar("S")

Transfer = Callable[[CFGNode, S], S]
Join = Callable[[S, S], S]
EdgeRefine = Callable[[S, CFGNode, Edge], S]


class FixpointError(RuntimeError):
    """The analysis failed to converge (non-monotone transfer/join)."""


def run_forward(
    cfg: CFG,
    *,
    init: S,
    bottom: S,
    transfer: Transfer,
    join: Join,
    edge_refine: Optional[EdgeRefine] = None,
    max_passes: int = 100,
) -> tuple[dict[int, S], dict[int, S]]:
    """Run a forward analysis to fixpoint; returns ``(in, out)`` maps.

    ``init`` seeds the entry node's input; every other node starts from
    ``bottom``.  Unreachable nodes keep ``bottom`` on both sides.
    """
    in_state: dict[int, S] = {n.idx: bottom for n in cfg.nodes}
    out_state: dict[int, S] = {n.idx: bottom for n in cfg.nodes}
    in_state[CFG.ENTRY] = init

    order = cfg.rpo()
    position = {idx: i for i, idx in enumerate(order)}
    worklist = list(order)
    queued = set(worklist)
    passes = 0

    while worklist:
        passes += 1
        if passes > max_passes * max(1, len(cfg.nodes)):
            raise FixpointError(
                f"{cfg.name}: no fixpoint after {passes} node visits "
                "(non-monotone transfer?)"
            )
        worklist.sort(key=lambda idx: position.get(idx, 0))
        idx = worklist.pop(0)
        queued.discard(idx)
        node = cfg.nodes[idx]

        if idx != CFG.ENTRY:
            acc = bottom
            for e in node.preds:
                src = cfg.nodes[e.src]
                flowing = out_state[e.src]
                if edge_refine is not None:
                    flowing = edge_refine(flowing, src, e)
                acc = join(acc, flowing)
            in_state[idx] = acc

        new_out = transfer(node, in_state[idx])
        if new_out != out_state[idx]:
            out_state[idx] = new_out
            for e in node.succs:
                if e.dst not in queued:
                    worklist.append(e.dst)
                    queued.add(e.dst)
    return in_state, out_state
