"""The seed → ``np.random.Generator`` boundary of the system.

Reproducibility invariant (enforced by tcblint rule TCB002): all
randomness threads an *explicit* ``np.random.Generator``, so any figure
or test can be replayed from its seed alone.  ``np.random.default_rng``
may only be called at documented entry points — this module is the
canonical one; pipeline code accepts either a Generator (injected by
the caller) or a seed and lowers it here.

``ensure_rng`` keeps historical seed behavior bit-stable:
``ensure_rng(seed)`` is exactly ``np.random.default_rng(seed)``, so
golden-regression outputs are unchanged by the injection refactor.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["SeedLike", "ensure_rng", "spawn_child"]

SeedLike = Union[int, np.integer, np.random.SeedSequence, np.random.Generator, None]


def ensure_rng(seed_or_rng: SeedLike, *, default_seed: Optional[int] = None) -> np.random.Generator:
    """Lower a seed — or pass through an injected Generator — to a Generator.

    - ``Generator`` → returned as-is (caller keeps ownership of the stream),
    - ``int`` / ``SeedSequence`` → ``np.random.default_rng(value)``,
    - ``None`` → ``np.random.default_rng(default_seed)`` (with
      ``default_seed=None`` this is OS entropy; pass an int for
      deterministic fallbacks).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if seed_or_rng is None:
        return np.random.default_rng(default_seed)
    return np.random.default_rng(seed_or_rng)


def spawn_child(rng: np.random.Generator) -> np.random.Generator:
    """Fork an independent child stream off *rng* (parent advances once)."""
    return np.random.default_rng(rng.integers(0, 2**63 - 1))
