"""Command-line interface: regenerate paper figures and ablations.

Usage::

    python -m repro list
    python -m repro figure fig10 [--fast] [--format table|csv|json] [--out F]
    python -m repro ablation packing [--format ...]
    python -m repro demo
    python -m repro info
    python -m repro lint [--format text|json] [--rules TCB001,...]
    python -m repro trace fig13 [--fast] [--format chrome|csv|ascii] [--out F]
    python -m repro bench [--quick] [--out BENCH_8.json] [--check BASELINE]

``--fast`` shrinks horizons/seeds so every figure runs in seconds —
useful for smoke runs; the published numbers come from the defaults.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from repro.analysis.export import series_to_csv, series_to_json
from repro.experiments.tables import format_series_table

__all__ = ["main", "available_figures", "available_ablations"]


def _figures() -> dict[str, tuple[str, Callable[[bool], dict]]]:
    from repro.experiments import (
        run_fig09_utility,
        run_fig10_throughput,
        run_fig11_fig12_fcfs,
        run_fig13_fig14_slot_speedup,
        run_fig15a_batch_size,
        run_fig15b_variance,
        run_fig15c_row_length,
        run_fig16_overhead,
    )

    def serving_kw(fast: bool) -> dict:
        return {"horizon": 4.0, "seeds": (0,)} if fast else {"horizon": 10.0, "seeds": (0, 1)}

    return {
        "fig9": (
            "utility vs arrival rate (DAS)",
            lambda fast: run_fig09_utility(**serving_kw(fast)),
        ),
        "fig10": (
            "throughput vs arrival rate (DAS)",
            lambda fast: run_fig10_throughput(**serving_kw(fast)),
        ),
        "fig11": (
            "FCFS throughput vs rate, σ=20",
            lambda fast: run_fig11_fig12_fcfs(20.0, **serving_kw(fast)),
        ),
        "fig12": (
            "FCFS throughput vs rate, σ=100",
            lambda fast: run_fig11_fig12_fcfs(100.0, **serving_kw(fast)),
        ),
        "fig13": (
            "slotted speedup, batch 10",
            lambda fast: run_fig13_fig14_slot_speedup(10),
        ),
        "fig14": (
            "slotted speedup, batch 32",
            lambda fast: run_fig13_fig14_slot_speedup(32),
        ),
        "fig15a": (
            "scheduler comparison vs batch size",
            lambda fast: run_fig15a_batch_size(**serving_kw(fast)),
        ),
        "fig15b": (
            "scheduler comparison vs length spread",
            lambda fast: run_fig15b_variance(**serving_kw(fast)),
        ),
        "fig15c": (
            "scheduler comparison vs row length",
            lambda fast: run_fig15c_row_length(**serving_kw(fast)),
        ),
        "fig16": (
            "DAS overhead ratio",
            lambda fast: run_fig16_overhead(**serving_kw(fast)),
        ),
    }


def _ablations() -> dict[str, tuple[str, Callable[[], dict]]]:
    from repro.experiments import ablations as ab

    return {
        "packing": ("row-packing policies", ab.packing_policy_ablation),
        "slots": ("slot-size policies", ab.slot_policy_ablation),
        "eta-q": ("DAS η/q sweep", ab.eta_q_ablation),
        "memory": ("early memory cleaning", ab.early_cleaning_ablation),
        "awareness": ("concat-awareness decomposition", ab.concat_aware_ablation),
        "kv-cache": ("KV-cached vs recompute decode", ab.incremental_decode_ablation),
        "das-components": ("DAS ingredient decomposition", ab.das_components_ablation),
        "sensitivity": ("cost-model sensitivity sweep", _run_sensitivity),
        "faults": ("serving under injected faults", _run_faults),
        "overload": ("goodput vs offered load, shedding off/on", _run_overload),
        "recovery": ("crash/restore cost vs checkpoint interval", _run_recovery),
        "tail": ("hedged dispatch vs straggler severity", _run_tail),
        "tenancy": ("noisy-neighbor isolation vs batch-tenant ramp", _run_tenancy),
    }


def _run_sensitivity():
    from repro.experiments.sensitivity import sensitivity_sweep

    return sensitivity_sweep(seeds=(0,))


def _run_faults():
    from repro.experiments.fault_tolerance import run_fault_tolerance

    return run_fault_tolerance(seeds=(0, 1))


def _run_overload():
    from repro.experiments.overload import run_overload

    return run_overload(seeds=(0, 1))


def _run_recovery():
    from repro.experiments.recovery import run_recovery

    return run_recovery(seeds=(0, 1))


def _run_tail():
    from repro.experiments.tail_tolerance import run_tail

    return run_tail(seeds=(0, 1))


def _run_tenancy():
    from repro.experiments.tenancy import run_tenancy

    return run_tenancy(seeds=(0, 1))


def available_figures() -> list[str]:
    return list(_figures())


def available_ablations() -> list[str]:
    return list(_ablations())


def _emit(series: dict, fmt: str, title: str, out: Optional[str]) -> None:
    if fmt == "table":
        text = format_series_table(series, title)
    elif fmt == "csv":
        text = series_to_csv(series)
    elif fmt == "json":
        text = series_to_json(series)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(fmt)
    if out:
        with open(out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {out}")
    else:
        print(text)


def _cmd_list(_args) -> int:
    from repro.experiments.traced import _TRACED

    print("figures:")
    for name, (desc, _) in _figures().items():
        print(f"  {name:8s} {desc}")
    print("ablations:")
    for name, (desc, _) in _ablations().items():
        print(f"  {name:8s} {desc}")
    print("traces:")
    for name, (desc, _) in _TRACED.items():
        print(f"  {name:10s} {desc}")
    return 0


def _cmd_figure(args) -> int:
    if args.name == "all":
        from repro.experiments.runner import run_all_figures, write_report

        report = write_report(run_all_figures(fast=args.fast))
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(report + "\n")
            print(f"wrote {args.out}")
        else:
            print(report)
        return 0
    figures = _figures()
    if args.name not in figures:
        print(f"unknown figure {args.name!r}; try `python -m repro list`", file=sys.stderr)
        return 2
    desc, runner = figures[args.name]
    series = runner(args.fast)
    _emit(series, args.format, f"{args.name} — {desc}", args.out)
    return 0


def _cmd_ablation(args) -> int:
    ablations = _ablations()
    if args.name not in ablations:
        print(f"unknown ablation {args.name!r}; try `python -m repro list`", file=sys.stderr)
        return 2
    desc, runner = ablations[args.name]
    series = runner()
    _emit(series, args.format, f"ablation {args.name} — {desc}", args.out)
    return 0


def _cmd_demo(_args) -> int:
    import numpy as np

    from repro.config import BatchConfig, ModelConfig
    from repro.model.vocab import ToyVocab
    from repro.serving.server import TCBServer

    vocab = ToyVocab()
    server = TCBServer(
        model_config=ModelConfig.tiny(vocab_size=vocab.size, max_len=64),
        batch=BatchConfig(num_rows=4, row_length=32),
        max_new_tokens=6,
    )
    rng = np.random.default_rng(0)
    sentences = [vocab.random_sentence(int(rng.integers(3, 12)), rng) for _ in range(6)]
    rids = [server.submit(vocab.encode(s)) for s in sentences]
    server.run_until_drained()
    for s, rid in zip(sentences, rids):
        resp = server.poll(rid)
        print(f"in : {s}")
        print(f"out: {vocab.decode(resp.output_tokens)}  ({resp.latency*1e3:.1f} ms)")
    return 0


def _cmd_trace(args) -> int:
    from repro.experiments.traced import available_traces, run_traced
    from repro.obs.export import (
        ascii_timeline,
        chrome_trace_json,
        spans_to_csv,
    )

    if args.name not in available_traces():
        print(
            f"unknown traced experiment {args.name!r}; "
            "try `python -m repro list`",
            file=sys.stderr,
        )
        return 2
    run = run_traced(args.name, fast=args.fast)
    if args.format == "chrome":
        text = chrome_trace_json(run.tracer)
    elif args.format == "csv":
        text = spans_to_csv(run.tracer)
    else:
        text = ascii_timeline(run.tracer)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        counts = run.tracer.outcome_counts()
        summary = " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"wrote {args.out} ({run.tracer.num_requests} requests; {summary})")
    else:
        print(text)
    return 0


def _cmd_bench(args) -> int:
    import json

    from repro.bench import (
        check_regression,
        format_bench_table,
        run_bench,
        write_bench,
    )

    report = run_bench(quick=args.quick)
    print(format_bench_table(report))
    if args.out:
        write_bench(report, args.out)
        print(f"wrote {args.out}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regression(
            report, baseline, threshold=args.threshold
        )
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check} (>{args.threshold:.0%})")
    return 0


def _cmd_info(_args) -> int:
    import repro
    from repro.config import ModelConfig
    from repro.engine.cost_model import GPUCostModel
    from repro.model.params import init_seq2seq

    print(f"repro {repro.__version__} — TCB (ICPP 2022) reproduction")
    cfg = ModelConfig.paper()
    print(
        f"paper model: {cfg.num_encoder_layers}+{cfg.num_decoder_layers} layers, "
        f"d_model={cfg.d_model}, heads={cfg.num_heads}, max_len={cfg.max_len}"
    )
    tiny = init_seq2seq(ModelConfig.tiny(), seed=0)
    print(f"tiny test model parameters: {tiny.num_parameters():,}")
    print(f"calibrated cost model: {GPUCostModel.calibrated()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TCB (ICPP 2022) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available figures and ablations").set_defaults(
        func=_cmd_list
    )

    p_fig = sub.add_parser("figure", help="regenerate a paper figure's series")
    p_fig.add_argument("name", help="figure id, e.g. fig10")
    p_fig.add_argument("--fast", action="store_true", help="short horizon, one seed")
    p_fig.add_argument("--format", choices=("table", "csv", "json"), default="table")
    p_fig.add_argument("--out", help="write to file instead of stdout")
    p_fig.set_defaults(func=_cmd_figure)

    p_ab = sub.add_parser("ablation", help="run an ablation study")
    p_ab.add_argument("name", help="ablation id, e.g. packing")
    p_ab.add_argument("--format", choices=("table", "csv", "json"), default="table")
    p_ab.add_argument("--out", help="write to file instead of stdout")
    p_ab.set_defaults(func=_cmd_ablation)

    p_tr = sub.add_parser(
        "trace", help="run a traced experiment and export its spans"
    )
    p_tr.add_argument("name", help="traced experiment id, e.g. fig13")
    p_tr.add_argument("--fast", action="store_true", help="short horizon")
    p_tr.add_argument(
        "--format",
        choices=("chrome", "csv", "ascii"),
        default="chrome",
        help="chrome = trace_event JSON for chrome://tracing / Perfetto",
    )
    p_tr.add_argument("--out", help="write to file instead of stdout")
    p_tr.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench",
        help="run the fast-path microbenchmarks, emit BENCH_<n>.json",
    )
    p_bench.add_argument(
        "--quick", action="store_true", help="CI-sized inputs (seconds)"
    )
    p_bench.add_argument(
        "--out",
        default="BENCH_8.json",
        help="write the JSON report here ('' = don't write)",
    )
    p_bench.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed BENCH json; exit 1 on regression",
    )
    p_bench.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed machine-normalized steps/sec drop (default 0.10)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    sub.add_parser("demo", help="run the online server demo").set_defaults(
        func=_cmd_demo
    )
    sub.add_parser("info", help="print version / configuration info").set_defaults(
        func=_cmd_info
    )

    from repro.statics.cli import add_lint_parser

    add_lint_parser(sub)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piping into `head`) — not an error.
        return 0
