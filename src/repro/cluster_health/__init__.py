"""Tail tolerance for cluster serving: keep p99 flat through gray failures.

Crashes are easy — PR 2's failover and PR 4's circuit breaker already
handle engines that *stop*.  This package handles engines that *limp*:
gray failures where a replica keeps returning correct results slowly
enough to destroy the latency tail.  Three composable mechanisms:

- :mod:`repro.cluster_health.score` — per-engine rolling scoreboards
  that fuse typed fault outcomes with observed-vs-predicted batch
  latencies into a continuous health score with hysteresis
  (HEALTHY → SUSPECT → QUARANTINED → probed back in);
- :mod:`repro.cluster_health.hedge` — quantile hedge deadlines and the
  first-completion-wins resolution vocabulary for duplicated batches;
- :mod:`repro.cluster_health.plane` — the per-run plane the
  :class:`~repro.serving.cluster.ClusterSimulator` consults for
  health-scored placement, drains/rolling restarts, and hedge targets.

Everything is seeded and replay-stable (dedicated RNG stream domain,
tcblint TCB011), inert by default (bit-identical digests when
disabled), and snapshot/restorable through the durability plane.  See
``docs/tail_tolerance.md``.
"""

from repro.cluster_health.hedge import (
    HedgeConfig,
    HedgeResolution,
    LatencyWindow,
)
from repro.cluster_health.plane import (
    DrainWindow,
    TailToleranceConfig,
    TailTolerancePlane,
)
from repro.cluster_health.score import (
    EngineScoreboard,
    HealthConfig,
    HealthState,
    HealthTransition,
)

__all__ = [
    "DrainWindow",
    "EngineScoreboard",
    "HealthConfig",
    "HealthState",
    "HealthTransition",
    "HedgeConfig",
    "HedgeResolution",
    "LatencyWindow",
    "TailToleranceConfig",
    "TailTolerancePlane",
]
