"""Hedged dispatch: quantile deadlines and first-completion-wins records.

The tail-at-scale playbook (Dean & Barroso) applied to batch serving:
once a dispatched batch on a SUSPECT engine is known to exceed a
deadline derived from the rolling latency distribution of *successful*
batches, a duplicate of the same batch is issued to a healthy idle
engine; whichever copy finishes first serves the requests and the loser
is cancelled.  The ledger only ever records the winner, so hedging
trades duplicated engine-seconds (tracked as ``hedge_wasted``) for p99
— never for double-counted terminals.

Everything here is pure bookkeeping on the simulated clock: the rolling
window uses a deterministic nearest-rank quantile (no interpolation, no
numpy state) so seeded runs and warm restarts reproduce identical hedge
decisions bit-for-bit.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["HedgeConfig", "LatencyWindow", "HedgeResolution"]


@dataclass(frozen=True)
class HedgeConfig:
    """When to issue a duplicate batch and to whom.

    The deadline is ``multiplier`` × the rolling ``quantile`` of
    successful batch busy-times; no hedge fires until the window holds
    ``min_observations`` samples, so cold starts never hedge off noise.
    With ``only_suspect`` (the default) hedges are restricted to batches
    running on SUSPECT engines — the scoreboard names the lane, the
    deadline names the moment.
    """

    quantile: float = 0.9
    multiplier: float = 1.0
    min_observations: int = 8
    window: int = 64
    only_suspect: bool = True

    def __post_init__(self) -> None:
        if not (0.0 < self.quantile < 1.0):
            raise ValueError(
                f"quantile must lie in (0, 1), got {self.quantile}"
            )
        if self.multiplier <= 0.0 or not math.isfinite(self.multiplier):
            raise ValueError(
                f"multiplier must be positive and finite, got {self.multiplier}"
            )
        if self.min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )
        if self.window < self.min_observations:
            raise ValueError(
                f"window {self.window} smaller than "
                f"min_observations {self.min_observations}"
            )


class LatencyWindow:
    """Rolling window of batch busy-times with a nearest-rank quantile."""

    def __init__(self, window: int) -> None:
        self.values: deque[float] = deque(maxlen=max(1, window))

    def __len__(self) -> int:
        return len(self.values)

    def add(self, value: float) -> None:
        self.values.append(value)

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile of the window, or None while empty.

        Nearest-rank (ceil(q·n)-th smallest) keeps the estimate an
        actual observed value — deterministic, monotone in q, and free
        of float interpolation drift across platforms.
        """
        if not self.values:
            return None
        ordered = sorted(self.values)
        rank = max(1, min(len(ordered), math.ceil(q * len(ordered))))
        return ordered[rank - 1]


@dataclass(frozen=True)
class HedgeResolution:
    """Outcome of one hedge attempt, resolved at winner completion.

    ``kind`` is one of:

    - ``"win"``    — the duplicate finished first; primary cancelled,
    - ``"lose"``   — the primary finished first; duplicate cancelled,
    - ``"failed"`` — the duplicate itself failed or crashed; the
      primary's result stands and only wasted time is booked.

    ``winner_dispatch``/``winner_latency`` describe the copy whose
    result reached the ledger; ``loser_busy`` is the engine time the
    losing copy consumed before cancellation (0 for ``failed`` hedges,
    whose wasted attempts are booked separately).  ``result`` carries
    the duplicate's :class:`~repro.engine.base.BatchResult` when the
    hedge won (None otherwise — the primary's result stands).
    """

    kind: str
    primary: int
    target: int
    deadline: float
    hedge_start: float
    winner_engine: int
    winner_dispatch: float
    winner_latency: float
    winner_finish: float
    loser_engine: int
    loser_busy: float
    result: Any = None
