"""Gray-failure detection: per-engine health scoring with hysteresis.

A *gray* engine is alive but slow — it keeps accepting batches and
returning results, so binary up/down failover (PR 2) and the typed-
failure circuit breaker (PR 4) never fire, yet every batch it touches
blows its latency budget.  The scoreboard turns two signals the cluster
loop already has into a continuous health score per engine:

- **typed fault outcomes** — a failed or crashed slot scores 0,
- **observed vs. predicted latency** — a successful slot scores 1 when
  it lands within ``slow_ratio``× of the
  :class:`~repro.engine.cost_model.GPUCostModel` prediction for its
  executed layouts, and degrades continuously (``slow_ratio / ratio``)
  as it straggles past it.

The score is the mean over a rolling window, and a small hysteresis
state machine lowers it into placement decisions::

    HEALTHY --(score < suspect_score)--> SUSPECT
    SUSPECT --(score >= healthy_score)--> HEALTHY      (hysteresis gap)
    any     --(score < quarantine_score)--> QUARANTINED
    QUARANTINED --(probe batches succeed)--> SUSPECT   (window cleared)

A QUARANTINED engine stops receiving regular placement; it is probed
with one real batch every ``probe_interval`` simulated seconds, and
``probe_successes`` consecutive good probes re-admit it as SUSPECT with
a cleared window (it must re-earn HEALTHY over ``min_window`` fresh
observations).  Everything advances on the simulated clock and every
transition is recorded, so a seeded chaos run replays an identical
transition log.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "HealthConfig",
    "HealthState",
    "HealthTransition",
    "EngineScoreboard",
]


class HealthState(enum.Enum):
    """Placement-facing health of one engine."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class HealthConfig:
    """Scoring window and hysteresis thresholds for gray detection.

    ``suspect_score`` must sit strictly below ``healthy_score`` — the
    gap *is* the hysteresis, so an engine hovering at the boundary does
    not flap — and ``quarantine_score`` strictly below both.
    """

    # Rolling observations per engine; the score is their mean.
    window: int = 16
    # Observations before the score is trusted (until then: HEALTHY).
    min_window: int = 4
    # Enter SUSPECT below this score...
    suspect_score: float = 0.6
    # ...and only return to HEALTHY at/above this one.
    healthy_score: float = 0.8
    # Enter QUARANTINED below this score (from any state).
    quarantine_score: float = 0.3
    # Latency ratio (observed / cost-model predicted) scored as on-time;
    # beyond it the slot's credit decays as slow_ratio / ratio.
    slow_ratio: float = 2.0
    # Simulated seconds between probe batches while QUARANTINED.
    probe_interval: float = 0.5
    # Consecutive good probes that re-admit a quarantined engine.
    probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_window < 1:
            raise ValueError("window and min_window must be >= 1")
        if self.min_window > self.window:
            raise ValueError(
                f"min_window {self.min_window} exceeds window {self.window}"
            )
        if not (
            0.0 < self.quarantine_score
            < self.suspect_score
            < self.healthy_score
            <= 1.0
        ):
            raise ValueError(
                "thresholds must satisfy 0 < quarantine_score < "
                "suspect_score < healthy_score <= 1, got "
                f"({self.quarantine_score}, {self.suspect_score}, "
                f"{self.healthy_score})"
            )
        if self.slow_ratio <= 1.0:
            raise ValueError(
                f"slow_ratio must exceed 1, got {self.slow_ratio}"
            )
        if self.probe_interval <= 0.0:
            raise ValueError(
                f"probe_interval must be positive, got {self.probe_interval}"
            )
        if self.probe_successes < 1:
            raise ValueError(
                f"probe_successes must be >= 1, got {self.probe_successes}"
            )

    def credit(self, *, ok: bool, ratio: float = 1.0) -> float:
        """Score one slot outcome into [0, 1].

        Failures and crashes score 0; successful slots score 1 up to
        ``slow_ratio``× the predicted latency and decay continuously
        beyond it, so a mild straggler is penalised less than a 6×
        one — the *continuous* part of the health score.
        """
        if not ok:
            return 0.0
        if ratio <= self.slow_ratio:
            return 1.0
        return self.slow_ratio / ratio


@dataclass(frozen=True)
class HealthTransition:
    """One health-state change, on the simulated clock."""

    t: float
    engine: int
    old: str
    new: str
    score: float
    reason: str


@dataclass
class EngineScoreboard:
    """Rolling score + hysteresis state machine for one engine."""

    config: HealthConfig = field(default_factory=HealthConfig)
    engine: int = 0

    def __post_init__(self) -> None:
        self.window: deque[float] = deque(maxlen=self.config.window)
        self.state = HealthState.HEALTHY
        # Next simulated time a probe batch may dispatch (QUARANTINED).
        self.probe_at = 0.0
        self._probe_successes = 0
        self.transitions: list[HealthTransition] = []

    # ------------------------------------------------------------------ #

    @property
    def score(self) -> float:
        """Mean credit over the rolling window (1.0 while empty)."""
        if not self.window:
            return 1.0
        return sum(self.window) / len(self.window)

    @property
    def warmed(self) -> bool:
        """Whether enough observations exist to trust the score."""
        return len(self.window) >= self.config.min_window

    def _move(self, now: float, new: HealthState, reason: str) -> None:
        self.transitions.append(
            HealthTransition(
                t=now,
                engine=self.engine,
                old=self.state.value,
                new=new.value,
                score=self.score,
                reason=reason,
            )
        )
        self.state = new

    def observe(self, now: float, credit: float) -> bool:
        """Feed one slot's credit; returns True when the state changed.

        While QUARANTINED the observation *is* a probe outcome: a full-
        credit slot counts toward re-admission, anything else resets the
        probe ladder.  Otherwise the window mean drives the hysteresis
        machine (demotions and promotions wait for ``min_window``
        observations, so one bad slot on a fresh engine cannot
        quarantine it).
        """
        c = self.config
        before = self.state
        if self.state is HealthState.QUARANTINED:
            self.window.append(credit)
            if credit >= c.healthy_score:
                self._probe_successes += 1
                if self._probe_successes >= c.probe_successes:
                    # Re-admitted on probation: the window is cleared so
                    # the engine re-earns HEALTHY over fresh slots
                    # instead of dragging its quarantine history along.
                    self.window.clear()
                    self._probe_successes = 0
                    self._move(now, HealthState.SUSPECT, "probes succeeded")
            else:
                self._probe_successes = 0
                self.probe_at = now + c.probe_interval
            return self.state is not before

        self.window.append(credit)
        if not self.warmed:
            return False
        s = self.score
        if s < c.quarantine_score:
            self.probe_at = now + c.probe_interval
            self._probe_successes = 0
            self._move(
                now,
                HealthState.QUARANTINED,
                f"score {s:.3f} < quarantine {c.quarantine_score}",
            )
        elif self.state is HealthState.HEALTHY and s < c.suspect_score:
            self._move(
                now,
                HealthState.SUSPECT,
                f"score {s:.3f} < suspect {c.suspect_score}",
            )
        elif self.state is HealthState.SUSPECT and s >= c.healthy_score:
            self._move(
                now,
                HealthState.HEALTHY,
                f"score {s:.3f} >= healthy {c.healthy_score}",
            )
        return self.state is not before

    def note_probe_dispatch(self, now: float) -> None:
        """A probe batch just dispatched: schedule the next window."""
        self.probe_at = now + self.config.probe_interval

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EngineScoreboard(engine={self.engine}, "
            f"state={self.state.value}, score={self.score:.3f})"
        )
