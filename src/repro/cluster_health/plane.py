"""The tail-tolerance plane: health-scored placement, drains, hedging.

One :class:`TailTolerancePlane` per cluster run composes the three
tail-tolerance mechanisms on top of :mod:`repro.cluster_health.score`
and :mod:`repro.cluster_health.hedge`:

- **health-scored placement** — when several engines are idle at the
  same simulated timestamp, :meth:`place` picks the highest-scored one;
  exact score ties break through a dedicated ``repro.rng`` stream
  (domain tag distinct from the fault plan / crash plan / shed streams,
  tcblint TCB011), so placement is replay-stable and independent of
  every other seeded component.  QUARANTINED engines are deferred to
  their next probe window and drained engines to their readmit time.
- **drain / readmit** — an operator-style rolling-restart primitive:
  a drained engine finishes its in-flight slot (placement never
  preempts) and then stops receiving work until the drain lifts.
  Drains are scheduled declaratively (:class:`DrainWindow`) or
  imperatively (:meth:`drain` / :meth:`readmit` between runs).
- **hedged dispatch support** — the rolling busy-time window feeds a
  quantile deadline (:meth:`hedge_deadline`, computed *at dispatch*
  from pre-dispatch state, so the decision is causal) and
  :meth:`hedge_target` picks the healthy idle engine a duplicate goes
  to.  The cluster loop owns the actual first-completion-wins
  resolution and its exactly-once ledger accounting.

The plane is inert by default: ``TailToleranceConfig()`` reports
``inert`` and the cluster loop then takes exactly its pre-plane paths
(bit-identical digests, tested).  All mutable state is exportable /
re-appliable as plain data so the durability plane can snapshot it and
a warm restart replays identical placement and hedge decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.cluster_health.hedge import HedgeConfig, LatencyWindow
from repro.cluster_health.score import (
    EngineScoreboard,
    HealthConfig,
    HealthState,
    HealthTransition,
)
from repro.obs.recorder import NO_TRACE
from repro.rng import ensure_rng

__all__ = [
    "DrainWindow",
    "TailToleranceConfig",
    "TailTolerancePlane",
]

# Stream-domain tag for placement tie-breaks.  Distinct from the fault
# plan (0xFA), scheduler crash (0xCC) and random-shed (0x5D) tags, so a
# cluster sharing one experiment seed across all planes never aliases
# streams (tcblint TCB011).
_STREAM_HEALTH_PLACEMENT = 0x7B

# Heap entry: (idle_at, tiebreak, engine_index) — the cluster loop's
# idle-heap tuple shape.
_Entry = tuple[float, int, int]


@dataclass(frozen=True)
class DrainWindow:
    """One scheduled drain: engine out of placement for [start, end)."""

    engine: int
    start: float
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.engine < 0:
            raise ValueError(f"engine must be >= 0, got {self.engine}")
        if self.start < 0.0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if not self.end > self.start:
            raise ValueError(
                f"drain window must satisfy end > start, got "
                f"[{self.start}, {self.end})"
            )


@dataclass(frozen=True)
class TailToleranceConfig:
    """Which tail-tolerance mechanisms a cluster run enables.

    All-default is inert: no detection, no hedging, no drains — the
    cluster loop must then behave bit-identically to a run without the
    plane.  Enabling *any* mechanism also turns on gray-failure
    detection (``health`` or its defaults), since placement, probing
    and hedging all read the scoreboards.
    """

    health: Optional[HealthConfig] = None
    hedge: Optional[HedgeConfig] = None
    drains: tuple[DrainWindow, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")

    @property
    def inert(self) -> bool:
        return (
            self.health is None and self.hedge is None and not self.drains
        )


class TailTolerancePlane:
    """Per-run scoreboards + placement policy + hedge bookkeeping."""

    def __init__(self, config: Optional[TailToleranceConfig] = None):
        self.config = config or TailToleranceConfig()
        self._health_cfg = self.config.health or HealthConfig()
        self._hedge_cfg = self.config.hedge
        self.begin_run()

    @property
    def enabled(self) -> bool:
        """False for the inert default config (loop skips every hook)."""
        return not self.config.inert

    def begin_run(self) -> None:
        """Reset per-run state (scoreboards, windows, decision cursor)."""
        self.boards: dict[int, EngineScoreboard] = {}
        self._latency = LatencyWindow(
            self._hedge_cfg.window if self._hedge_cfg is not None else 1
        )
        # Placement tie-break draws consumed so far: the cursor indexes
        # the per-decision child stream, making every draw a pure
        # function of (seed, tag, decision) — replay-stable.
        self._decision = 0
        # engine -> imperative drain end (math.inf until readmitted).
        self._manual: dict[int, float] = {}

    # ------------------------------------------------------------------ #
    # Scoreboards
    # ------------------------------------------------------------------ #

    def board(self, engine: int) -> EngineScoreboard:
        b = self.boards.get(engine)
        if b is None:
            b = EngineScoreboard(config=self._health_cfg, engine=engine)
            self.boards[engine] = b
        return b

    def state(self, engine: int) -> HealthState:
        return self.board(engine).state

    def score(self, engine: int) -> float:
        return self.board(engine).score

    def transition_log(self) -> list[HealthTransition]:
        """All health transitions across engines, in time order."""
        out: list[HealthTransition] = []
        for b in self.boards.values():
            out.extend(b.transitions)
        out.sort(key=lambda t: (t.t, t.engine))
        return out

    def predict(self, engine: Any, result: Any) -> Optional[float]:
        """Cost-model latency for the layouts one slot executed.

        This is exactly what a COST-mode engine charges for the batch,
        so the observed/predicted ratio of an injected straggler equals
        its multiplier — the detector sees the fault plan's signal
        undiluted.
        """
        cost_model = getattr(engine, "cost_model", None)
        if cost_model is None or result is None:
            return None
        total = 0.0
        for layout in result.layouts:
            total += cost_model.layout_time(layout)
        return total

    def observe(
        self,
        engine: int,
        now: float,
        *,
        ok: bool,
        observed: Optional[float] = None,
        predicted: Optional[float] = None,
        tracer: Any = NO_TRACE,
    ) -> None:
        """Feed one slot outcome into the engine's scoreboard.

        Successful on-time slots (ratio within ``slow_ratio``) also feed
        the hedge latency window — stragglers are excluded from it on
        purpose, so the hedge deadline tracks the *healthy* busy-time
        distribution instead of chasing the tail it exists to cut.
        """
        b = self.board(engine)
        ratio = 1.0
        if ok and observed is not None and predicted is not None:
            ratio = observed / max(predicted, 1e-12)
        credit = self._health_cfg.credit(ok=ok, ratio=ratio)
        changed = b.observe(now, credit)
        if changed and tracer.enabled:
            moved = b.transitions[-1]
            tracer.health(
                now,
                "health",
                engine=engine,
                old=moved.old,
                new=moved.new,
                score=round(moved.score, 6),
                reason=moved.reason,
            )
        if ok and observed is not None and credit >= 1.0:
            self._latency.add(observed)

    # ------------------------------------------------------------------ #
    # Drains
    # ------------------------------------------------------------------ #

    def drain(self, engine: int, *, until: float = math.inf) -> None:
        """Operator drain: stop placing on ``engine`` until ``until``.

        Takes effect at the engine's next placement decision; the
        in-flight slot (if any) always finishes.  An engine drained with
        the default open end stays parked for the remainder of the run
        even if :meth:`readmit` is called mid-run — its idle-heap entry
        was already deferred — so open-ended imperative drains are a
        between-runs operator tool; use :class:`DrainWindow` (or a
        finite ``until``) for in-run rolling restarts.
        """
        if engine < 0:
            raise ValueError(f"engine must be >= 0, got {engine}")
        self._manual[engine] = until

    def readmit(self, engine: int) -> None:
        """Lift an imperative drain (future placement decisions only)."""
        self._manual.pop(engine, None)

    def drained_until(self, engine: int, now: float) -> Optional[float]:
        """End of the engine's active drain at ``now`` (None if none)."""
        until: Optional[float] = None
        manual = self._manual.get(engine)
        if manual is not None and manual > now:
            until = manual
        for w in self.config.drains:
            if w.engine == engine and w.start <= now < w.end:
                until = w.end if until is None else max(until, w.end)
        return until

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #

    def place(
        self,
        entries: Sequence[_Entry],
        now: float,
        *,
        tracer: Any = NO_TRACE,
    ) -> tuple[Optional[_Entry], list[_Entry]]:
        """Pick one engine from the same-timestamp idle group.

        Returns ``(chosen, deferred)``: ``chosen`` is the heap entry to
        dispatch on (None when every entry was deferred) and
        ``deferred`` are entries to push back — unplaceable engines
        retimed strictly later (drain end / probe window), losing
        placeable engines kept at ``now`` so they dispatch on the
        following iterations.

        Selection is argmax health score over placeable engines
        (QUARANTINED probes only dispatch when nothing else is
        placeable); exact ties break via the dedicated placement RNG
        stream, with the candidate list pre-sorted by engine id so the
        draw is order-independent.
        """
        candidates: list[_Entry] = []
        deferred: list[_Entry] = []
        for entry in sorted(entries, key=lambda e: (e[2], e[1])):
            engine = entry[2]
            until = self.drained_until(engine, now)
            if until is not None:
                deferred.append((until, engine, engine))
                continue
            b = self.board(engine)
            if b.state is HealthState.QUARANTINED and now < b.probe_at:
                deferred.append((b.probe_at, engine, engine))
                continue
            candidates.append(entry)
        if not candidates:
            return None, deferred
        regular = [
            e
            for e in candidates
            if self.board(e[2]).state is not HealthState.QUARANTINED
        ]
        pool = regular or candidates
        best = max(self.board(e[2]).score for e in pool)
        tied = [e for e in pool if self.board(e[2]).score == best]
        if len(tied) > 1:
            rng = ensure_rng(
                np.random.SeedSequence(
                    (self.config.seed, _STREAM_HEALTH_PLACEMENT, self._decision)
                )
            )
            self._decision += 1
            chosen = tied[int(rng.integers(len(tied)))]
        else:
            chosen = tied[0]
        deferred.extend(e for e in candidates if e is not chosen)
        b = self.board(chosen[2])
        if b.state is HealthState.QUARANTINED:
            # Dispatching on a quarantined engine *is* the probe.
            b.note_probe_dispatch(now)
            if tracer.enabled:
                tracer.health(
                    now, "probe", engine=chosen[2], score=round(b.score, 6)
                )
        return chosen, deferred

    # ------------------------------------------------------------------ #
    # Hedging
    # ------------------------------------------------------------------ #

    def hedge_deadline(self, engine: int) -> Optional[float]:
        """Busy-time budget beyond which a slot on ``engine`` hedges.

        Computed from pre-dispatch state only — the rolling quantile of
        past healthy busy-times and the engine's *current* scoreboard
        state — so the decision a simulated operator takes at the
        deadline is causal.  None disables hedging for this slot.
        """
        cfg = self._hedge_cfg
        if cfg is None:
            return None
        state = self.board(engine).state
        if state is HealthState.QUARANTINED:
            # Probes measure the engine; hedging one would mask it.
            return None
        if cfg.only_suspect and state is not HealthState.SUSPECT:
            return None
        if len(self._latency) < cfg.min_observations:
            return None
        q = self._latency.quantile(cfg.quantile)
        if q is None:
            return None
        return q * cfg.multiplier

    def hedge_target(
        self, idle: Sequence[_Entry], primary: int, by: float
    ) -> Optional[_Entry]:
        """Best healthy idle engine able to start the duplicate by ``by``.

        Scans the idle heap for HEALTHY, undrained engines (never the
        primary) whose idle-at is within the hedge start; highest score
        wins, ties break on engine id — no RNG here, the duplicate goes
        to the unambiguously best lane.
        """
        best: Optional[tuple[tuple[float, int], _Entry]] = None
        for entry in idle:
            t, _, engine = entry
            if engine == primary or t > by:
                continue
            if self.drained_until(engine, by) is not None:
                continue
            b = self.board(engine)
            if b.state is not HealthState.HEALTHY:
                continue
            key = (-b.score, engine)
            if best is None or key < best[0]:
                best = (key, entry)
        return None if best is None else best[1]

    def note_hedged_latency(self, busy: float) -> None:
        """Feed a hedge winner's busy time into the deadline window."""
        self._latency.add(busy)

    # ------------------------------------------------------------------ #
    # Durability export / apply (see repro.durability.snapshot)
    # ------------------------------------------------------------------ #

    def export_state(self) -> dict[str, Any]:
        """All mutable plane state as plain data (fresh containers)."""
        return {
            "boards": {
                e: {
                    "window": list(b.window),
                    "state": b.state.value,
                    "probe_at": b.probe_at,
                    "probe_successes": b._probe_successes,
                    "transitions": list(b.transitions),
                }
                for e, b in self.boards.items()
            },
            "latency": list(self._latency.values),
            "decision": self._decision,
            "manual": dict(self._manual),
        }

    def apply_state(self, state: dict[str, Any]) -> None:
        """Restore :meth:`export_state` output (warm-restart path)."""
        self.begin_run()
        for engine, bs in state["boards"].items():
            b = self.board(engine)
            b.window.extend(bs["window"])
            b.state = HealthState(bs["state"])
            b.probe_at = bs["probe_at"]
            b._probe_successes = bs["probe_successes"]
            b.transitions[:] = list(bs["transitions"])
        for value in state["latency"]:
            self._latency.add(value)
        self._decision = state["decision"]
        self._manual = dict(state["manual"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = {
            e: b.state.value for e, b in sorted(self.boards.items())
        }
        return (
            f"TailTolerancePlane(enabled={self.enabled}, states={states}, "
            f"decisions={self._decision})"
        )
