"""repro — a full reproduction of TCB (ICPP 2022).

TCB accelerates transformer inference services by (1) *ConcatBatching* —
concatenating variable-length requests inside batch rows with a
correctness-preserving masked self-attention and separate positional
encoding, (2) *slotted* ConcatBatching that removes the masked-out
redundancy, and (3) *DAS*, an online deadline-aware scheduler with an
``ηq/(ηq+1)`` competitive ratio.

Public API quick tour::

    from repro import (
        Request, BatchConfig, ModelConfig, SchedulerConfig,
        Seq2SeqModel, BatchLayout,
        DASScheduler, FCFSScheduler,
        ConcatEngine, SlottedConcatEngine, NaiveEngine, TurboEngine,
        ServingSimulator, WorkloadGenerator,
    )

See ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

from repro.config import BatchConfig, ModelConfig, SchedulerConfig, ServingConfig
from repro.types import Request, make_requests, total_utility

__version__ = "1.0.0"

__all__ = [
    "BatchConfig",
    "ModelConfig",
    "SchedulerConfig",
    "ServingConfig",
    "Request",
    "make_requests",
    "total_utility",
    "__version__",
]

# Heavier subsystems are imported lazily to keep `import repro` fast and to
# avoid import cycles; they are still re-exported at package level.

_LAZY = {
    "BatchLayout": ("repro.core.layout", "BatchLayout"),
    "Seq2SeqModel": ("repro.model.seq2seq", "Seq2SeqModel"),
    "ToyVocab": ("repro.model.vocab", "ToyVocab"),
    "BPETokenizer": ("repro.model.bpe", "BPETokenizer"),
    "sample_decode": ("repro.model.sampling", "sample_decode"),
    "greedy_decode_incremental": (
        "repro.model.incremental",
        "greedy_decode_incremental",
    ),
    "NaiveEngine": ("repro.engine.naive", "NaiveEngine"),
    "TurboEngine": ("repro.engine.turbo", "TurboEngine"),
    "ConcatEngine": ("repro.engine.concat", "ConcatEngine"),
    "SlottedConcatEngine": ("repro.engine.slotted", "SlottedConcatEngine"),
    "AdaptiveEngine": ("repro.engine.adaptive", "AdaptiveEngine"),
    "GPUCostModel": ("repro.engine.cost_model", "GPUCostModel"),
    "GPUMemorySimulator": ("repro.engine.memory", "GPUMemorySimulator"),
    "DASScheduler": ("repro.scheduling.das", "DASScheduler"),
    "SlottedDASScheduler": ("repro.scheduling.slotted_das", "SlottedDASScheduler"),
    "FCFSScheduler": ("repro.scheduling.baselines", "FCFSScheduler"),
    "SJFScheduler": ("repro.scheduling.baselines", "SJFScheduler"),
    "DEFScheduler": ("repro.scheduling.baselines", "DEFScheduler"),
    "OracleScheduler": ("repro.scheduling.oracle", "OracleScheduler"),
    "ServingSimulator": ("repro.serving.simulator", "ServingSimulator"),
    "ClusterSimulator": ("repro.serving.cluster", "ClusterSimulator"),
    "AdmissionController": ("repro.serving.admission", "AdmissionController"),
    "TCBServer": ("repro.serving.server", "TCBServer"),
    "WorkloadGenerator": ("repro.workload.generator", "WorkloadGenerator"),
    "CorpusWorkload": ("repro.workload.corpus", "CorpusWorkload"),
    "BurstyWorkload": ("repro.workload.burst", "BurstyWorkload"),
    "ClassifierModel": ("repro.model.classifier", "ClassifierModel"),
    "beam_decode": ("repro.model.beam", "beam_decode"),
    "validate_layout": ("repro.core.validation", "validate_layout"),
    "render_layout": ("repro.core.render", "render_layout"),
    "ContinuousBatchingSimulator": (
        "repro.serving.continuous",
        "ContinuousBatchingSimulator",
    ),
    "AutoscalingSimulator": ("repro.serving.autoscale", "AutoscalingSimulator"),
    "FaultConfig": ("repro.faults.plan", "FaultConfig"),
    "FaultPlan": ("repro.faults.plan", "FaultPlan"),
    "FaultyEngine": ("repro.faults.engine", "FaultyEngine"),
    "RetryPolicy": ("repro.faults.recovery", "RetryPolicy"),
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module, attr = _LAZY[name]
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_LAZY))
