"""Engine protocol and shared execution plumbing.

An engine consumes the requests the scheduler picked for one engine slot
and returns a :class:`BatchResult` describing what ran: which requests
were actually served, the slot's latency, padding statistics and the
layouts that were executed.

Two execution modes (:class:`EngineMode`):

- ``COST`` — latency from the analytic :class:`GPUCostModel`; token ids
  are never touched, so paper-scale workloads (thousands of requests,
  d_model 3072) run in microseconds of host time.
- ``MEASURED`` — the layouts are executed through the real NumPy
  transformer and wall-clock timed.  Requests must carry token ids (use
  :meth:`InferenceEngine.materialize_tokens` to synthesise them).
"""

from __future__ import annotations

import abc
import enum
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.config import BatchConfig, ModelConfig
from repro.core.layout import BatchLayout
from repro.engine.cost_model import GPUCostModel
from repro.engine.memory import GPUMemorySimulator
from repro.rng import ensure_rng
from repro.types import Request, RequestBatchStats

__all__ = ["MIN_SLOT", "EngineMode", "BatchResult", "InferenceEngine"]

# Engine time floor: a zero-latency slot would spin the serving loops
# forever.  Canonical definition — serving code re-exports it.
MIN_SLOT = 1e-6


class EngineMode(enum.Enum):
    COST = "cost"
    MEASURED = "measured"


@dataclass
class BatchResult:
    """Outcome of serving one engine slot."""

    served: list[Request] = field(default_factory=list)
    rejected: list[Request] = field(default_factory=list)
    latency: float = 0.0
    layouts: list[BatchLayout] = field(default_factory=list)
    stats: RequestBatchStats = field(default_factory=RequestBatchStats)

    @property
    def num_served(self) -> int:
        return len(self.served)

    @property
    def throughput(self) -> float:
        """Requests served per second of engine time."""
        return 0.0 if self.latency <= 0 else self.num_served / self.latency


class InferenceEngine(abc.ABC):
    """Base class for the four batching-scheme engines."""

    name: str = "base"

    def __init__(
        self,
        batch: BatchConfig,
        *,
        mode: EngineMode = EngineMode.COST,
        cost_model: Optional[GPUCostModel] = None,
        model_config: Optional[ModelConfig] = None,
        model_seed: int = 0,
    ):
        self.batch = batch
        self.mode = mode
        self.cost_model = cost_model or GPUCostModel.calibrated()
        self._model = None
        self._model_config = model_config
        self._model_seed = model_seed
        self._memory_sim: Optional[GPUMemorySimulator] = None

    # ------------------------------------------------------------------ #
    # Scheme-specific planning
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def plan(self, requests: Sequence[Request]) -> tuple[list[BatchLayout], list[Request]]:
        """Lay out the requests; returns (layouts, rejected)."""

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def serve(
        self, requests: Sequence[Request], *, now: float = 0.0
    ) -> BatchResult:
        """Plan and execute one engine slot's worth of requests.

        ``now`` is the simulated dispatch time.  Base engines are
        time-invariant and ignore it; the fault-injection wrapper
        (:class:`repro.faults.engine.FaultyEngine`) needs it to decide
        whether the engine is inside a crash-recovery window.
        """
        if not requests:
            return BatchResult()
        layouts, rejected = self.plan(requests)
        result = BatchResult(rejected=list(rejected), layouts=list(layouts))
        for layout in layouts:
            layout.validate()
            result.served.extend(layout.requests())
            w = layout.effective_width
            result.stats.num_requests += layout.num_requests
            result.stats.useful_tokens += layout.useful_tokens
            result.stats.padded_tokens += layout.num_rows * w - layout.useful_tokens
            result.stats.rows += layout.num_rows
            result.stats.row_width = max(result.stats.row_width, w)
            if self.mode is EngineMode.COST:
                result.latency += self.cost_model.layout_time(layout)
            else:
                result.latency += self._execute_measured(layout)
        return result

    def _execute_measured(self, layout: BatchLayout) -> float:
        model = self._get_model()
        start = time.perf_counter()
        slotted = layout.scheme == "slotted" and any(
            row.slots for row in layout.rows
        )
        memory = model.encode_layout(layout, slotted=slotted)
        # A short decode keeps measured mode affordable while still
        # exercising the auto-regressive path.
        model.greedy_decode(layout, max_new_tokens=4, memory=memory)
        return time.perf_counter() - start

    def _get_model(self):
        if self._model is None:
            from repro.model.seq2seq import Seq2SeqModel

            cfg = self._model_config or ModelConfig.tiny(
                max_len=max(64, self.batch.row_length)
            )
            self._model = Seq2SeqModel(cfg, seed=self._model_seed)
        return self._model

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def trace_annotations(self, result: BatchResult) -> dict[str, float]:
        """Per-batch compute-cost and memory-watermark annotations.

        Called by traced serving loops (``repro.obs``) after a
        successful slot: sums the cost model's component breakdown and
        the activation-memory watermark over the executed layouts.
        Priced in the engine so every scheme (naive, turbo, concat,
        slotted) annotates with its *own* layout structure.
        """
        if self._memory_sim is None:
            cfg = self._model_config or ModelConfig.paper()
            self._memory_sim = GPUMemorySimulator(
                cfg.d_model, max(1, cfg.num_encoder_layers + cfg.num_decoder_layers)
            )
        annotations: dict[str, float] = {}
        watermark = 0
        for layout in result.layouts:
            for key, value in self.cost_model.layout_breakdown(layout).items():
                annotations[key] = annotations.get(key, 0.0) + value
            watermark += self._memory_sim.watermark_bytes(layout)
        annotations["memory_watermark_bytes"] = float(watermark)
        return annotations

    def materialize_tokens(
        self,
        requests: Sequence[Request],
        seed: int = 0,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> list[Request]:
        """Attach synthetic token ids (measured mode needs real tokens)."""
        cfg = self._model_config or ModelConfig.tiny(
            max_len=max(64, self.batch.row_length)
        )
        rng = ensure_rng(rng, default_seed=seed)
        return [
            r
            if r.tokens is not None
            else r.with_tokens(rng.integers(4, cfg.vocab_size, size=r.length))
            for r in requests
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(B={self.batch.num_rows}, "
            f"L={self.batch.row_length}, mode={self.mode.value})"
        )
