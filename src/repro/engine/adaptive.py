"""AdaptiveEngine: pick the cheapest batching plan per engine slot.

The paper notes TurboTransformers' optimisations "are orthogonal to our
work [and] can also be applied in TCB for further performance
improvement" (§6.1).  This engine operationalises that: for each slot's
request set it *plans* with several candidate schemes — pure
ConcatBatching, slotted ConcatBatching at a few slot sizes, and the
TurboBatching DP split — prices each plan with the cost model, and
executes the cheapest one that serves every request.

Plans that reject requests are only chosen if no complete plan exists
(then the one serving the most requests at the lowest per-request cost
wins).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.layout import BatchLayout
from repro.engine.base import InferenceEngine
from repro.engine.concat import ConcatEngine
from repro.engine.slotted import SlottedConcatEngine
from repro.engine.turbo import TurboEngine
from repro.types import Request

__all__ = ["AdaptiveEngine"]


class AdaptiveEngine(InferenceEngine):
    name = "adaptive"

    def __init__(self, *args, slot_counts: Sequence[int] = (2, 4, 8), **kwargs):
        super().__init__(*args, **kwargs)
        self.slot_counts = tuple(slot_counts)
        common = dict(mode=self.mode, cost_model=self.cost_model)
        self._candidates: list[InferenceEngine] = [
            ConcatEngine(self.batch, **common),
            TurboEngine(self.batch, **common),
            *(
                SlottedConcatEngine(self.batch, num_slots=n, **common)
                for n in self.slot_counts
            ),
        ]
        self.last_choice: Optional[str] = None

    def plan(
        self, requests: Sequence[Request]
    ) -> tuple[list[BatchLayout], list[Request]]:
        best: Optional[tuple[float, list[BatchLayout], list[Request], str]] = None
        n = len(requests)
        for engine in self._candidates:
            layouts, rejected = engine.plan(requests)
            served = n - len(rejected)
            if served == 0:
                continue
            cost = sum(self.cost_model.layout_time(l) for l in layouts)
            per_request = cost / served
            # Lexicographic preference: serve more requests first, then
            # cheaper per served request.
            key = (-served, per_request)
            if best is None or key < (-(n - len(best[2])), best[0]):
                best = (per_request, layouts, rejected, engine.name)
        if best is None:
            return [], list(requests)
        self.last_choice = best[3]
        return best[1], best[2]
