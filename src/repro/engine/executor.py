"""Thread-parallel slot execution for measured mode.

Paper Fig. 7: "Different slots can run self-attention computation in
parallel."  On the GPU that parallelism is free (one batched kernel);
on the NumPy substrate, equal-size slots already collapse into a single
batched matmul (`att_cb_s`'s fast path), but *ragged* slot sets fall
back to a Python loop.  This module executes that loop across a thread
pool — NumPy's BLAS releases the GIL, so large slots genuinely overlap.

Results are bit-identical to the sequential path (each slot writes a
disjoint output span); ``tests/test_executor.py`` verifies equivalence
and the ablation bench measures the overlap.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

import numpy as np

from repro.core.concat_attention import attention

__all__ = ["parallel_slot_attention"]


def parallel_slot_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    slot_spans: Sequence[tuple[int, int]],
    slot_masks: Optional[Sequence[Optional[np.ndarray]]] = None,
    *,
    max_workers: int = 4,
) -> np.ndarray:
    """Slot-wise attention with slots dispatched to a thread pool.

    Semantics identical to :func:`repro.core.concat_attention.att_cb_s`
    (ragged path); spans must tile the token axis contiguously.
    """
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    if not slot_spans:
        raise ValueError("slot_spans must contain at least one span")
    spans = sorted(slot_spans)
    w = q.shape[-2]
    pos = 0
    for a, b in spans:
        if a != pos:
            raise ValueError(f"slot spans not contiguous at {a} (expected {pos})")
        pos = b
    if pos != w:
        raise ValueError(f"slot spans cover {pos} tokens but width is {w}")
    masks = list(slot_masks) if slot_masks is not None else [None] * len(spans)
    if len(masks) != len(spans):
        raise ValueError("slot_masks must align with slot_spans")

    out = np.zeros_like(np.asarray(q, dtype=np.float64))

    def run(idx: int) -> None:
        a, b = spans[idx]
        out[..., a:b, :] = attention(
            q[..., a:b, :], k[..., a:b, :], v[..., a:b, :], mask=masks[idx]
        )

    if max_workers == 1 or len(spans) == 1:
        for i in range(len(spans)):
            run(i)
        return out

    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        list(pool.map(run, range(len(spans))))
    return out
