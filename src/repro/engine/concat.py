"""Pure ConcatBatching engine (paper §4.1).

Packs the scheduler's selection into ``B`` rows of ``L`` tokens by
concatenation (in scheduler order — the order DAS constructed), executes
with the block-diagonal masked attention and separate positional
encoding.  Requests that do not fit the batch are *returned* as rejected
so the serving loop can retry them next slot rather than drop them.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.layout import BatchLayout
from repro.core.packing import pack_first_fit, pack_in_order
from repro.engine.base import InferenceEngine
from repro.types import Request

__all__ = ["ConcatEngine"]


class ConcatEngine(InferenceEngine):
    name = "concat"

    def __init__(self, *args, packing: str = "first_fit", **kwargs):
        super().__init__(*args, **kwargs)
        if packing not in ("first_fit", "in_order"):
            raise ValueError(f"unknown packing policy {packing!r}")
        self.packing = packing

    def plan(
        self, requests: Sequence[Request]
    ) -> tuple[list[BatchLayout], list[Request]]:
        packer = pack_first_fit if self.packing == "first_fit" else pack_in_order
        res = packer(
            list(requests), self.batch.num_rows, self.batch.row_length
        )
        if res.num_packed == 0:
            return [], res.rejected
        return [res.layout], res.rejected
