"""Slotted ConcatBatching engine (paper §4.2, Algorithm 2's engine half).

Rows are divided into fixed-size slots; self-attention is computed per
slot (Eq. 8), and finished slots release their memory early (§4.2.2 —
see :class:`repro.engine.memory.GPUMemorySimulator`).

The slot size is supplied per ``serve()`` call by the scheduler
(Algorithm 2 derives it from the utility-dominant set) or fixed at
construction for the Figs. 13–14 microbenchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.layout import BatchLayout
from repro.core.slotting import pack_into_slots, slot_size_fixed_count
from repro.engine.base import InferenceEngine
from repro.types import Request

__all__ = ["SlottedConcatEngine"]


class SlottedConcatEngine(InferenceEngine):
    name = "slotted"

    def __init__(self, *args, num_slots: Optional[int] = None, **kwargs):
        """``num_slots`` pins a fixed equal-slot division (microbenchmark
        mode); otherwise the slot size must come from the scheduler via
        :meth:`set_slot_size`."""
        super().__init__(*args, **kwargs)
        self._fixed_num_slots = num_slots
        self._slot_size: Optional[int] = None
        if num_slots is not None:
            self._slot_size = slot_size_fixed_count(
                num_slots, self.batch.row_length
            )

    def set_slot_size(self, slot_size: int) -> None:
        """Scheduler hook: Algorithm 2 line 4 decides the slot size."""
        if slot_size < 1 or slot_size > self.batch.row_length:
            raise ValueError(
                f"slot_size must be in [1, {self.batch.row_length}], got {slot_size}"
            )
        if self._fixed_num_slots is not None:
            raise ValueError("engine was constructed with a fixed slot count")
        self._slot_size = slot_size

    @property
    def slot_size(self) -> int:
        if self._slot_size is None:
            # Degenerate to pure ConcatBatching (single whole-row slot).
            return self.batch.row_length
        return self._slot_size

    def plan(
        self, requests: Sequence[Request]
    ) -> tuple[list[BatchLayout], list[Request]]:
        res = pack_into_slots(
            list(requests),
            self.batch.num_rows,
            self.batch.row_length,
            self.slot_size,
        )
        if not res.packed:
            return [], res.rejected
        return [res.layout], res.rejected
