"""TNB — Transformer with NaiveBatching (paper §6.1, Fig. 1a).

The PyTorch-default scheme: each batch holds up to ``B`` requests, one
per row, zero-padded to the longest request in that batch.  A slot's
request set larger than ``B`` is executed as consecutive naive batches
(the slot simply takes longer — this is how the paper's "feed TNB the
same scheduling results" comparison stays fair).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.layout import BatchLayout
from repro.engine.base import InferenceEngine
from repro.types import Request

__all__ = ["NaiveEngine"]


class NaiveEngine(InferenceEngine):
    name = "naive"

    def plan(
        self, requests: Sequence[Request]
    ) -> tuple[list[BatchLayout], list[Request]]:
        reqs = [r for r in requests if r.length <= self.batch.row_length]
        rejected = [r for r in requests if r.length > self.batch.row_length]
        # A naive server batches requests as they arrived — it performs no
        # length-aware reordering (that is exactly TurboBatching's edge).
        reqs.sort(key=lambda r: (r.arrival, r.request_id))
        layouts: list[BatchLayout] = []
        b = self.batch.num_rows
        for i in range(0, len(reqs), b):
            chunk = reqs[i : i + b]
            layouts.append(BatchLayout.naive(chunk))
        return layouts, rejected
