"""Analytic GPU latency model for transformer batch inference.

The paper's evaluation runs on a V100; we do not have one, so serving-
scale benchmarks use this calibrated cost model instead (see DESIGN.md's
substitution table).  The model keeps exactly the terms TCB's claims rest
on:

``latency(batch) = fixed + linear + attention (+ decode)``

- **fixed** — per-batch overhead: kernel launches, framework dispatch,
  H2D/D2H staging.  This is what makes many small TurboBatching groups
  more expensive than their token count suggests.
- **linear** — token-proportional work: QKV/output projections and the
  FFN.  Scales with *computed* (useful + padded) tokens, which is where
  zero-padding hurts.
- **attention** — the score/softmax/AV kernels.  Work is
  ``B · Σ_slots z_i²`` score entries (quadratic in slot width — the
  redundancy slotted ConcatBatching removes), but the kernel is *floor-
  limited*: below a certain size the GPU is latency-bound, not
  throughput-bound, so shrinking the work does not shrink the time.  The
  floor is what makes slotting pay off more at batch 32 than at batch 10
  (paper Figs. 13–14).
- **slot overhead** — per extra slot kernel launch.
- **decode** — autoregressive decoding modelled as a multiplicative
  factor over the encode pass (the paper's serving figures do not resolve
  decode internals).

Default constants come from :meth:`GPUCostModel.calibrated`, fitted so the
paper's *relative* results hold (see ``tests/test_cost_model.py`` and
EXPERIMENTS.md); absolute seconds are not meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from repro.core.layout import BatchLayout

__all__ = ["GPUCostModel"]


@dataclass(frozen=True)
class GPUCostModel:
    """Latency model; all times in seconds.

    Attributes
    ----------
    fixed_per_batch:
        Constant cost of launching one batch through the whole model.
    per_token:
        Linear (projection + FFN) cost per computed token, whole model.
    attn_rate:
        Attention throughput in score-entries/second (whole model);
        attention work for a batch is ``Σ_rows Σ_slots z²`` entries.
    attn_floor:
        Minimum latency of the attention pass regardless of how little
        work it does (GPU latency-bound regime).
    per_slot:
        Extra launch overhead per additional slot kernel.
    decode_factor:
        Decode cost as a multiple of the encode pass.
    """

    fixed_per_batch: float = 0.05
    per_token: float = 1.25e-4
    attn_rate: float = 1.6e6
    attn_floor: float = 0.375
    per_slot: float = 0.01
    decode_factor: float = 0.25

    # Memoization (ISSUE 8): every public cost is a pure function of its
    # arguments and the six constants, so re-evaluating the same shape
    # returns the same IEEE bits — caching is exact, not approximate.
    # Batch sweeps hit identical (tokens, entries, slots) tuples
    # thousands of times.  The cache lives outside the dataclass fields
    # (set via object.__setattr__ to dodge frozen=True) so eq/repr/hash
    # and dataclasses.replace are unaffected; each instance gets its own
    # cache, keyed by constants implicitly.
    _MEMO_LIMIT = 65536

    def __post_init__(self) -> None:
        object.__setattr__(self, "_memo", {})

    def _memoized(self, key: tuple, compute) -> float:
        memo = self._memo
        hit = memo.get(key)
        if hit is None:
            if len(memo) >= self._MEMO_LIMIT:
                memo.clear()
            hit = memo[key] = compute()
        return hit

    # ------------------------------------------------------------------ #
    # Component costs
    # ------------------------------------------------------------------ #

    def linear_time(self, computed_tokens: int) -> float:
        """Projection + FFN time for ``computed_tokens`` positions."""
        if computed_tokens < 0:
            raise ValueError("computed_tokens must be >= 0")
        return self.per_token * computed_tokens

    def attention_time(self, score_entries: int, num_slots: int = 1) -> float:
        """Attention-pass time for ``score_entries`` total QKᵀ entries.

        All slots of a batch are launched together (they run in parallel
        on the GPU, Fig. 7), so the floor applies once; extra slots only
        add ``per_slot`` launch overhead each.
        """
        if score_entries < 0:
            raise ValueError("score_entries must be >= 0")
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        work = score_entries / self.attn_rate
        return max(self.attn_floor, work) + self.per_slot * (num_slots - 1)

    # ------------------------------------------------------------------ #
    # Batch-level costs
    # ------------------------------------------------------------------ #

    def encode_time(
        self,
        computed_tokens: int,
        score_entries: int,
        num_slots: int = 1,
    ) -> float:
        return (
            self.fixed_per_batch
            + self.linear_time(computed_tokens)
            + self.attention_time(score_entries, num_slots)
        )

    def batch_time(
        self,
        computed_tokens: int,
        score_entries: int,
        num_slots: int = 1,
        *,
        include_decode: bool = True,
    ) -> float:
        return self._memoized(
            ("batch", computed_tokens, score_entries, num_slots, include_decode),
            lambda: self._batch_time(
                computed_tokens, score_entries, num_slots, include_decode
            ),
        )

    def _batch_time(
        self,
        computed_tokens: int,
        score_entries: int,
        num_slots: int,
        include_decode: bool,
    ) -> float:
        enc = self.encode_time(computed_tokens, score_entries, num_slots)
        return enc * (1.0 + self.decode_factor) if include_decode else enc

    def decode_step_time(self, active_requests: int, context_tokens: int) -> float:
        """One auto-regressive decode step for a running batch.

        Used by iteration-level (continuous-batching) serving: each step
        computes one new token per active request, attending over
        ``context_tokens`` of resident context.  Modelled as a small
        fixed launch cost plus token-linear work for the new tokens plus
        attention reads over the context (linear, not quadratic — one
        query row per request).
        """
        if active_requests < 0 or context_tokens < 0:
            raise ValueError("active_requests and context_tokens must be >= 0")
        if active_requests == 0:
            return 0.0

        def compute() -> float:
            launch = self.fixed_per_batch * 0.2
            linear = self.per_token * active_requests
            attn_reads = context_tokens / self.attn_rate
            return launch + linear + max(self.attn_floor * 0.2, attn_reads)

        return self._memoized(("decode", active_requests, context_tokens), compute)

    def prefill_time(self, computed_tokens: int, score_entries: int) -> float:
        """Prompt-processing (encode) time for newly admitted requests."""
        return self.encode_time(computed_tokens, score_entries, 1)

    @staticmethod
    def layout_work(layout: BatchLayout) -> tuple[int, int, int]:
        """``(computed_tokens, score_entries, num_slots)`` of a layout.

        The computed width is the layout's effective width (e.g. naive
        batches are padded to the longest request, not to the row
        capacity); attention work follows the layout's slot structure.
        """
        w = layout.effective_width
        tokens = layout.num_rows * w
        entries = 0
        num_slots = 0
        for spans in layout.slot_boundaries():
            for a, b in spans:
                z = min(b, w) - min(a, w)
                if z > 0:
                    entries += z * z
                    num_slots += 1
        num_slots = max(1, num_slots // max(1, layout.num_rows))
        return tokens, entries, num_slots

    def _layout_work_cached(self, layout: BatchLayout) -> tuple[int, int, int]:
        """:meth:`layout_work`, memoized on the layout's shape fingerprint.

        The work triple is a pure function of the fingerprint (row
        count, effective width, slot spans — exactly what
        :meth:`layout_work` reads), so the cache is exact.
        """
        fp = layout.shape_fingerprint()
        memo = self._memo
        hit = memo.get(fp)
        if hit is None:
            if len(memo) >= self._MEMO_LIMIT:
                memo.clear()
            hit = memo[fp] = self.layout_work(layout)
        return hit

    def layout_time(
        self, layout: BatchLayout, *, include_decode: bool = True
    ) -> float:
        """Latency of executing one :class:`BatchLayout`."""
        tokens, entries, num_slots = self._layout_work_cached(layout)
        return self.batch_time(
            tokens, entries, num_slots, include_decode=include_decode
        )

    def layout_breakdown(
        self, layout: BatchLayout, *, include_decode: bool = True
    ) -> dict[str, float]:
        """Per-component latency of a layout (tracing annotation).

        Splits :meth:`layout_time` into the model's terms — fixed
        launch, token-linear, attention, decode — so a trace can show
        *where* a batch's time went, not just how long it took.
        """
        tokens, entries, num_slots = self._layout_work_cached(layout)
        fixed = self.fixed_per_batch
        lin = self.linear_time(tokens)
        attn = self.attention_time(entries, num_slots)
        encode = fixed + lin + attn
        decode = encode * self.decode_factor if include_decode else 0.0
        return {
            "cost_fixed": fixed,
            "cost_linear": lin,
            "cost_attention": attn,
            "cost_decode": decode,
            "cost_total": encode + decode,
            "score_entries": float(entries),
        }

    # ------------------------------------------------------------------ #
    # Calibration
    # ------------------------------------------------------------------ #

    @staticmethod
    def calibrated() -> "GPUCostModel":
        """Constants fitted to the paper's relative results.

        Fitted (see ``benchmarks/`` and EXPERIMENTS.md) so that, with the
        paper's workloads:

        - slotted speedup grows with batch size and plateaus around 7
          slots: ~1.6× at batch 10 and ~2.2× at batch 32 (paper: 1.18× /
          2.31× — Figs. 13–14; the ordering and plateau location hold,
          the batch-10 gain is compressed less than on real hardware),
        - saturated FCFS throughput gaps: ≈3.4× TCB/TNB (paper 3.33×)
          and ≈1.5× TTB/TNB, widening with length variance (Figs. 11–12).

        No single 6-constant model reproduces every absolute factor at
        once (the V100's occupancy behaviour is richer); these constants
        prioritise orderings, crossovers and plateau locations.  See
        EXPERIMENTS.md for measured-vs-paper numbers.
        """
        return GPUCostModel(
            fixed_per_batch=0.05,
            per_token=1.25e-4,
            attn_rate=1.6e6,
            attn_floor=0.375,
            per_slot=0.01,
            decode_factor=0.25,
        )

    def with_(self, **kwargs) -> "GPUCostModel":
        """Return a copy with selected constants replaced."""
        return replace(self, **kwargs)
