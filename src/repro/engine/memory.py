"""GPU memory accounting with early cleaning (paper §4.2.2).

During inference, a batch and its intermediate tensors stay resident
until results are produced.  Because the decoder is auto-regressive,
requests finish at different steps; slotted ConcatBatching makes slots
separable tensors, so a finished slot's memory can be *released early*
and the next batch's loading can overlap the tail of the current batch.

This module simulates that accounting.  It does not try to model a real
allocator — it tracks resident bytes over decode steps and reports:

- peak resident bytes with and without early cleaning,
- byte-steps (∫ resident d(step)) — the quantity early cleaning reduces,
- how many bytes were available for next-batch overlap, per step.

Pure ConcatBatching cannot early-clean (requests inside a row are not
tensor-separable — §4.2.2), which the simulator enforces: only layouts
with slots release memory before the final step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.core.layout import BatchLayout

__all__ = ["MemoryReport", "GPUMemorySimulator"]

# Bytes resident per token position: embeddings + per-layer activations
# kept for the decoder pass.  A constant multiplier is enough — every
# scheme scales identically and only *relative* residency matters.
_BYTES_PER_TOKEN_UNIT = 4  # fp32


@dataclass
class MemoryReport:
    """Result of simulating one batch's memory lifetime."""

    peak_bytes: int
    final_step: int
    byte_steps: int
    # byte_steps if no early cleaning had happened (everything resident
    # until final_step).
    byte_steps_no_cleaning: int
    # Per-step bytes freed early (index = decode step, 1-based step s at
    # freed_per_step[s-1]).
    freed_per_step: list[int] = field(default_factory=list)

    @property
    def savings_ratio(self) -> float:
        """Fraction of byte-steps early cleaning removed (0 = none)."""
        if self.byte_steps_no_cleaning == 0:
            return 0.0
        return 1.0 - self.byte_steps / self.byte_steps_no_cleaning

    @property
    def overlap_bytes(self) -> int:
        """Bytes released before the batch finished (loadable early)."""
        return sum(self.freed_per_step)


class GPUMemorySimulator:
    """Simulates resident activation memory of one batch over decode steps."""

    def __init__(self, d_model: int, num_layers: int = 6):
        if d_model < 1 or num_layers < 1:
            raise ValueError("d_model and num_layers must be >= 1")
        self.bytes_per_token = _BYTES_PER_TOKEN_UNIT * d_model * num_layers

    def slot_bytes(self, slot_tokens: int) -> int:
        return slot_tokens * self.bytes_per_token

    def watermark_bytes(self, layout: BatchLayout) -> int:
        """Peak resident bytes while ``layout`` executes (no cleaning).

        Everything is resident at once at the start of the decode pass,
        so the watermark is independent of completion order — the
        per-batch memory annotation the tracing layer records.
        """
        total = 0
        for row in layout.rows:
            if layout.scheme == "slotted" and row.slots:
                total += sum(
                    self.slot_bytes(slot.size)
                    for slot in row.slots
                    if slot.segments
                )
            elif row.segments:
                total += self.slot_bytes(layout.effective_width)
        return total

    def simulate(
        self,
        layout: BatchLayout,
        completion_step: Mapping[int, int],
        *,
        early_cleaning: bool = True,
    ) -> MemoryReport:
        """Walk the decode steps of a finished generation.

        ``completion_step`` maps request_id → 1-based decode step at which
        that request finished (from
        :class:`repro.model.seq2seq.GenerationResult`).

        With early cleaning, a *slot* is freed at the step where its last
        request finishes; unslotted layouts are freed only at the end,
        matching §4.2.2's observation that concatenated rows cannot be
        split into removable tensors.
        """
        # Collect (unit_bytes, release_step) per memory unit.
        units: list[tuple[int, int]] = []
        final_step = max(completion_step.values(), default=1)
        for row in layout.rows:
            if layout.scheme == "slotted" and row.slots:
                for slot in row.slots:
                    if not slot.segments:
                        continue
                    step = max(
                        completion_step.get(s.request.request_id, final_step)
                        for s in slot.segments
                    )
                    units.append((self.slot_bytes(slot.size), step))
            else:
                if not row.segments:
                    continue
                # Whole row is one inseparable tensor.
                step = final_step
                units.append((self.slot_bytes(layout.effective_width), step))

        total = sum(b for b, _ in units)
        if not early_cleaning:
            units = [(b, final_step) for b, _ in units]

        freed = [0] * final_step
        byte_steps = 0
        for b, step in units:
            release = min(step, final_step)
            byte_steps += b * release
            if release < final_step:
                freed[release - 1] += b
        return MemoryReport(
            peak_bytes=total,
            final_step=final_step,
            byte_steps=byte_steps,
            byte_steps_no_cleaning=total * final_step,
            freed_per_step=freed,
        )
