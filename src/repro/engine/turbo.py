"""TTB — Transformer with TurboBatching (paper §6.1, Fig. 1b).

Reimplements TurboTransformers' length-aware batching [Fang et al.,
PPoPP'21]: requests are sorted by length and split into contiguous
groups by a dynamic program that minimises total execution cost, where a
group of ``b`` requests padded to its longest member ``W`` costs

``cost(group) = fixed + b · W · per_token  (+ attention term)``

— i.e. the DP trades the per-batch fixed overhead against the padding
each merge introduces.  Group size is capped at the configured batch
rows ``B``.

The DP is exact (O(n²) over n requests, with the cap making the inner
loop O(B)) and is validated against brute-force enumeration in
``tests/test_turbo.py``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.layout import BatchLayout
from repro.engine.base import InferenceEngine
from repro.engine.cost_model import GPUCostModel
from repro.types import Request

__all__ = ["TurboEngine", "dp_split"]


def dp_split(
    lengths: Sequence[int],
    cost_fn: Callable[[int, int], float],
    max_group: Optional[int] = None,
) -> list[tuple[int, int]]:
    """Optimal contiguous partition of *sorted* ``lengths``.

    ``cost_fn(count, width)`` is the execution cost of a group of
    ``count`` requests padded to ``width``.  Returns ``(start, end)``
    index pairs covering ``[0, n)``.  Raises if ``lengths`` is not
    non-decreasing (the DP's optimality argument needs sorted input).
    """
    n = len(lengths)
    if n == 0:
        return []
    if any(lengths[i] > lengths[i + 1] for i in range(n - 1)):
        raise ValueError("dp_split requires non-decreasing lengths")
    cap = n if max_group is None else max_group
    if cap < 1:
        raise ValueError("max_group must be >= 1")

    best = [0.0] + [float("inf")] * n  # best[i] = min cost of first i
    cut = [0] * (n + 1)
    for i in range(1, n + 1):
        # Group is lengths[j:i], width = lengths[i-1] (sorted).
        width = lengths[i - 1]
        for j in range(max(0, i - cap), i):
            c = best[j] + cost_fn(i - j, width)
            if c < best[i]:
                best[i] = c
                cut[i] = j
    groups: list[tuple[int, int]] = []
    i = n
    while i > 0:
        j = cut[i]
        groups.append((j, i))
        i = j
    groups.reverse()
    return groups


class TurboEngine(InferenceEngine):
    name = "turbo"

    def group_cost(self, count: int, width: int) -> float:
        """Cost of one padded group under the engine's cost model."""
        cm: GPUCostModel = self.cost_model
        return cm.batch_time(count * width, count * width * width, 1)

    def plan(
        self, requests: Sequence[Request]
    ) -> tuple[list[BatchLayout], list[Request]]:
        reqs = [r for r in requests if r.length <= self.batch.row_length]
        rejected = [r for r in requests if r.length > self.batch.row_length]
        reqs.sort(key=lambda r: r.length)
        if not reqs:
            return [], rejected
        lengths = [r.length for r in reqs]
        groups = dp_split(lengths, self.group_cost, max_group=self.batch.num_rows)
        layouts = [
            BatchLayout.naive(reqs[a:b]) for a, b in groups
        ]
        for layout in layouts:
            layout.scheme = "turbo"
        return layouts, rejected
