"""Inference engines implementing the paper's batching schemes.

Every engine consumes the *same* scheduler output (a list of requests
picked for one engine slot) and differs only in how it lays the requests
out on the (simulated or real) accelerator:

- :class:`~repro.engine.naive.NaiveEngine` — TNB: one request per row,
  zero-padded to the longest request (PyTorch default, Fig. 1a),
- :class:`~repro.engine.turbo.TurboEngine` — TTB: TurboTransformers'
  length-aware dynamic-programming batch splitter (Fig. 1b),
- :class:`~repro.engine.concat.ConcatEngine` — pure ConcatBatching
  (Fig. 1c, §4.1),
- :class:`~repro.engine.slotted.SlottedConcatEngine` — slotted
  ConcatBatching with early memory cleaning (§4.2).

Engines run in one of two modes:

- ``"cost"`` — latency comes from the analytic
  :class:`~repro.engine.cost_model.GPUCostModel` (paper-scale sweeps),
- ``"measured"`` — the real NumPy transformer is executed and wall-clock
  timed (small-scale validation).
"""

from repro.engine.base import BatchResult, EngineMode, InferenceEngine
from repro.engine.cost_model import GPUCostModel
from repro.engine.memory import GPUMemorySimulator, MemoryReport
from repro.engine.naive import NaiveEngine
from repro.engine.turbo import TurboEngine, dp_split
from repro.engine.concat import ConcatEngine
from repro.engine.slotted import SlottedConcatEngine

__all__ = [
    "BatchResult",
    "EngineMode",
    "InferenceEngine",
    "GPUCostModel",
    "GPUMemorySimulator",
    "MemoryReport",
    "NaiveEngine",
    "TurboEngine",
    "dp_split",
    "ConcatEngine",
    "SlottedConcatEngine",
]
