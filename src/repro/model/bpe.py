"""Byte-pair-encoding tokenizer, trained from scratch.

The paper's serving scenario is NLP (translation requests); real request
lengths come from a *tokenizer*, so this module provides one — a clean
implementation of word-internal BPE in the style of Sennrich et al.
(2016):

- :meth:`BPETokenizer.train` learns merge rules from a corpus by
  repeatedly merging the most frequent adjacent symbol pair,
- :meth:`BPETokenizer.encode` applies the learned merges (in rank
  order) to new text and maps symbols to ids,
- :meth:`BPETokenizer.decode` inverts it exactly for trained-alphabet
  text.

Words are encoded independently (a ``</w>`` marker terminates each
word), so ``encode`` is deterministic and round-trips whitespace-
normalised text.  Characters never seen at training time fall back to
``UNK``.

This powers :func:`repro.workload.corpus.corpus_workload`, which turns
raw text into a request-length distribution — the empirical stand-in
for the paper's ParaCrawl/GLUE datasets.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = ["BPETokenizer"]

_END = "</w>"


@dataclass
class BPETokenizer:
    """Trainable byte-pair encoder with PAD/EOS/BOS/UNK specials."""

    PAD: int = 0
    EOS: int = 1
    BOS: int = 2
    UNK: int = 3

    merges: list[tuple[str, str]] = field(default_factory=list)
    vocab: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    @staticmethod
    def _word_symbols(word: str) -> tuple[str, ...]:
        return tuple(word) + (_END,)

    @staticmethod
    def _pair_counts(
        words: dict[tuple[str, ...], int]
    ) -> collections.Counter:
        counts: collections.Counter = collections.Counter()
        for symbols, freq in words.items():
            for a, b in zip(symbols, symbols[1:]):
                counts[(a, b)] += freq
        return counts

    @staticmethod
    def _merge_word(
        symbols: tuple[str, ...], pair: tuple[str, str]
    ) -> tuple[str, ...]:
        merged: list[str] = []
        i = 0
        while i < len(symbols):
            if (
                i + 1 < len(symbols)
                and symbols[i] == pair[0]
                and symbols[i + 1] == pair[1]
            ):
                merged.append(pair[0] + pair[1])
                i += 2
            else:
                merged.append(symbols[i])
                i += 1
        return tuple(merged)

    def train(self, corpus: Iterable[str], num_merges: int = 200) -> "BPETokenizer":
        """Learn up to ``num_merges`` merge rules from the corpus."""
        if num_merges < 0:
            raise ValueError("num_merges must be >= 0")
        word_freq: collections.Counter = collections.Counter()
        for line in corpus:
            for word in line.split():
                word_freq[word] += 1
        if not word_freq:
            raise ValueError("cannot train on an empty corpus")

        words = {
            self._word_symbols(w): f for w, f in word_freq.items()
        }
        self.merges = []
        for _ in range(num_merges):
            counts = self._pair_counts(words)
            if not counts:
                break
            # Deterministic tie-break: highest count, then lexicographic.
            pair = max(counts, key=lambda p: (counts[p], p))
            if counts[pair] < 2:
                break  # nothing left worth merging
            self.merges.append(pair)
            words = {
                self._merge_word(symbols, pair): f
                for symbols, f in words.items()
            }

        # Build the symbol vocabulary: every surviving symbol + alphabet.
        symbols: set[str] = set()
        for word in words:
            symbols.update(word)
        for w in word_freq:
            symbols.update(w)  # single chars, for fallback segmentation
        symbols.add(_END)
        self.vocab = {"<pad>": self.PAD, "<eos>": self.EOS, "<bos>": self.BOS, "<unk>": self.UNK}
        for sym in sorted(symbols):
            self.vocab[sym] = len(self.vocab)
        self._rank = {pair: i for i, pair in enumerate(self.merges)}
        self._id_to_sym = {i: s for s, i in self.vocab.items()}
        return self

    # ------------------------------------------------------------------ #
    # Encoding / decoding
    # ------------------------------------------------------------------ #

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    def _segment_word(self, word: str) -> list[str]:
        symbols = list(self._word_symbols(word))
        rank = getattr(self, "_rank", None)
        if rank is None:
            raise RuntimeError("tokenizer is not trained")
        while len(symbols) > 1:
            best: Optional[tuple[int, int]] = None  # (rank, index)
            for i in range(len(symbols) - 1):
                r = rank.get((symbols[i], symbols[i + 1]))
                if r is not None and (best is None or r < best[0]):
                    best = (r, i)
            if best is None:
                break
            _, i = best
            symbols[i : i + 2] = [symbols[i] + symbols[i + 1]]
        return symbols

    def encode(self, text: str) -> list[int]:
        """Encode whitespace-separated text into token ids."""
        out: list[int] = []
        for word in text.split():
            for sym in self._segment_word(word):
                out.append(self.vocab.get(sym, self.UNK))
        return out

    def decode(self, ids: Sequence[int]) -> str:
        """Invert :meth:`encode`; specials are skipped, EOS terminates."""
        pieces: list[str] = []
        for i in ids:
            i = int(i)
            if i == self.EOS:
                break
            if i in (self.PAD, self.BOS):
                continue
            sym = self._id_to_sym.get(i, "<unk>")
            pieces.append(sym)
        text = "".join(pieces)
        return text.replace(_END, " ").strip()

    def token_length(self, text: str) -> int:
        """Number of tokens ``encode`` would produce (no id mapping)."""
        return sum(len(self._segment_word(w)) for w in text.split())
