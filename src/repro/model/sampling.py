"""Stochastic decoding: temperature and top-k sampling over layouts.

The greedy decoder covers the paper's determinism needs; production
Seq2Seq services also expose sampling.  :func:`sample_decode` mirrors
:meth:`Seq2SeqModel.greedy_decode` (same layout conventions, same
concat-aware masks) but draws each next token from the softmax
distribution, optionally sharpened by ``temperature`` and truncated to
the ``top_k`` most likely tokens.

With ``temperature → 0`` (or ``top_k=1``) it reduces exactly to greedy
decoding — tested in ``tests/test_sampling.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.layout import BatchLayout
from repro.core.masks import causal_block_mask, cross_attention_mask
from repro.model.decoder import decode_stack
from repro.model.functional import softmax
from repro.model.seq2seq import GenerationResult, Seq2SeqModel
from repro.rng import ensure_rng

__all__ = ["sample_decode"]


def _pick(
    logits: np.ndarray,
    rng: np.random.Generator,
    temperature: float,
    top_k: Optional[int],
) -> int:
    if temperature <= 0.0 or top_k == 1:
        return int(np.argmax(logits))
    scaled = logits / temperature
    if top_k is not None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        kth = np.partition(scaled, -top_k)[-top_k]
        scaled = np.where(scaled >= kth, scaled, -np.inf)
    probs = softmax(scaled)
    return int(rng.choice(len(probs), p=probs))


def sample_decode(
    model: Seq2SeqModel,
    layout: BatchLayout,
    max_new_tokens: int = 16,
    *,
    temperature: float = 1.0,
    top_k: Optional[int] = None,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> GenerationResult:
    """Sampled autoregressive decoding of all requests in a layout.

    Pass ``rng`` to share a caller-owned Generator stream; otherwise a
    fresh one is derived from ``seed`` (historical behavior).
    """
    if temperature < 0.0:
        raise ValueError("temperature must be >= 0")
    cfg = model.config
    if layout.num_requests == 0:
        return GenerationResult()
    rng = ensure_rng(rng, default_seed=seed)
    memory = model.encode_layout(layout)
    enc_seg = layout.segment_id_matrix()

    rows = layout.rows
    b = len(rows)
    budget = max_new_tokens + 1
    max_segs = max(len(r.segments) for r in rows)
    wd = max_segs * budget
    dec_tokens = np.full((b, wd), cfg.pad_token, dtype=np.int64)
    dec_seg = np.full((b, wd), -1, dtype=np.int64)
    dec_pos = np.zeros((b, wd), dtype=np.int64)

    starts: dict[int, tuple[int, int]] = {}
    lengths: dict[int, int] = {}
    finished: dict[int, bool] = {}
    order: list[int] = []
    for k, row in enumerate(rows):
        for i, seg in enumerate(row.segments):
            rid = seg.request.request_id
            start = i * budget
            starts[rid] = (k, start)
            lengths[rid] = 1
            finished[rid] = False
            order.append(rid)
            dec_tokens[k, start] = cfg.bos_token
            dec_seg[k, start] = rid

    result = GenerationResult(outputs={rid: [] for rid in order})
    for step in range(1, max_new_tokens + 1):
        active = [rid for rid in order if not finished[rid]]
        if not active:
            break
        result.steps_run = step
        x = model.embed(dec_tokens, dec_pos)
        h = decode_stack(
            model.params.decoder_layers,
            cfg.num_heads,
            x,
            memory,
            causal_block_mask(dec_seg),
            cross_attention_mask(dec_seg, enc_seg),
        )
        logits = model.project_logits(h)
        for rid in active:
            k, start = starts[rid]
            cur = lengths[rid]
            nxt = _pick(logits[k, start + cur - 1], rng, temperature, top_k)
            result.outputs[rid].append(nxt)
            if nxt == cfg.eos_token or cur >= budget - 1:
                finished[rid] = True
                result.completion_step[rid] = step
            else:
                dec_tokens[k, start + cur] = nxt
                dec_seg[k, start + cur] = rid
                dec_pos[k, start + cur] = cur
                lengths[rid] = cur + 1
    for rid in order:
        result.completion_step.setdefault(rid, result.steps_run)
    return result
