"""Position-wise feed-forward block (post-attention FFN)."""

from __future__ import annotations

import numpy as np

from repro.model.functional import linear, relu
from repro.model.params import FeedForwardParams

__all__ = ["feed_forward"]


def feed_forward(params: FeedForwardParams, x: np.ndarray) -> np.ndarray:
    """``relu(x W1 + b1) W2 + b2`` applied position-wise."""
    return linear(relu(linear(x, params.w1, params.b1)), params.w2, params.b2)
