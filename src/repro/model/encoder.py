"""Transformer encoder stack with pluggable attention masks.

One encoder layer = self-attention + residual + LayerNorm, then FFN +
residual + LayerNorm (post-norm, as in the original architecture the
paper's Fig. 2 depicts).  The self-attention mask is supplied by the
caller so the same stack serves all batching schemes:

- NaiveBatching / TurboBatching: padding-key mask,
- pure ConcatBatching: block-diagonal mask (Eq. 6),
- slotted ConcatBatching: slot spans + within-slot masks (Eq. 8).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.model.attention import (
    multi_head_attention,
    multi_head_attention_slotted,
)
from repro.model.feedforward import feed_forward
from repro.model.functional import layer_norm
from repro.model.params import EncoderLayerParams

__all__ = ["encoder_layer", "encoder_layer_slotted", "encode"]


def encoder_layer(
    params: EncoderLayerParams,
    num_heads: int,
    x: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    attn = multi_head_attention(params.self_attn, num_heads, x, mask=mask)
    x = layer_norm(x + attn, params.norm1.gamma, params.norm1.beta)
    ffn = feed_forward(params.ffn, x)
    return layer_norm(x + ffn, params.norm2.gamma, params.norm2.beta)


def encoder_layer_slotted(
    params: EncoderLayerParams,
    num_heads: int,
    x: np.ndarray,
    slot_spans: Sequence[tuple[int, int]],
    slot_masks: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> np.ndarray:
    attn = multi_head_attention_slotted(
        params.self_attn, num_heads, x, slot_spans, slot_masks
    )
    x = layer_norm(x + attn, params.norm1.gamma, params.norm1.beta)
    ffn = feed_forward(params.ffn, x)
    return layer_norm(x + ffn, params.norm2.gamma, params.norm2.beta)


def encode(
    layers: Sequence[EncoderLayerParams],
    num_heads: int,
    x: np.ndarray,
    mask: Optional[np.ndarray] = None,
    *,
    slot_spans: Optional[Sequence[tuple[int, int]]] = None,
    slot_masks: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> np.ndarray:
    """Run the full encoder stack.

    If ``slot_spans`` is given, every layer's self-attention runs slot-wise
    (slotted ConcatBatching); otherwise the additive ``mask`` is used.
    """
    h = x
    for layer in layers:
        if slot_spans is not None:
            h = encoder_layer_slotted(layer, num_heads, h, slot_spans, slot_masks)
        else:
            h = encoder_layer(layer, num_heads, h, mask)
    return h
