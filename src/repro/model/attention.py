"""Multi-head attention with arbitrary additive masks.

The head dimension is handled by reshape/transpose (``split_heads`` /
``merge_heads``); the per-head computation delegates to the kernels in
:mod:`repro.core.concat_attention`, so the *same* code path serves
vanilla, pure-ConcatBatching (block-diagonal mask) and slotted attention.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.concat_attention import att_cb_s, attention
from repro.model.functional import linear
from repro.model.params import AttentionParams

__all__ = ["split_heads", "merge_heads", "multi_head_attention", "multi_head_attention_slotted"]


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """``(B, W, d) -> (B, H, W, d/H)``."""
    b, w, d = x.shape
    if d % num_heads:
        raise ValueError(f"d={d} not divisible by num_heads={num_heads}")
    return np.ascontiguousarray(
        x.reshape(b, w, num_heads, d // num_heads).transpose(0, 2, 1, 3)
    )


def merge_heads(x: np.ndarray) -> np.ndarray:
    """``(B, H, W, d/H) -> (B, W, d)``."""
    b, h, w, dh = x.shape
    return np.ascontiguousarray(x.transpose(0, 2, 1, 3)).reshape(b, w, h * dh)


def multi_head_attention(
    params: AttentionParams,
    num_heads: int,
    query_input: np.ndarray,
    key_value_input: Optional[np.ndarray] = None,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Standard multi-head attention.

    ``mask`` is additive with shape ``(B, Wq, Wk)`` (broadcast over heads)
    or anything broadcastable to ``(B, H, Wq, Wk)``.  Self-attention when
    ``key_value_input`` is omitted; cross-attention otherwise.
    """
    kv = query_input if key_value_input is None else key_value_input
    q = split_heads(linear(query_input, params.w_q, params.b_q), num_heads)
    k = split_heads(linear(kv, params.w_k, params.b_k), num_heads)
    v = split_heads(linear(kv, params.w_v, params.b_v), num_heads)
    m = None
    if mask is not None:
        m = mask[:, None, :, :] if mask.ndim == 3 else mask
    out = attention(q, k, v, mask=m)
    return linear(merge_heads(out), params.w_o, params.b_o)


def multi_head_attention_slotted(
    params: AttentionParams,
    num_heads: int,
    x: np.ndarray,
    slot_spans: Sequence[tuple[int, int]],
    slot_masks: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> np.ndarray:
    """Slot-wise multi-head self-attention (Eq. 8 lifted to multi-head).

    ``slot_masks[i]`` — if given — is the within-slot additive mask of
    slot ``i`` with shape ``(B, z_i, z_i)``; it is broadcast over heads.
    """
    q = split_heads(linear(x, params.w_q, params.b_q), num_heads)
    k = split_heads(linear(x, params.w_k, params.b_k), num_heads)
    v = split_heads(linear(x, params.w_v, params.b_v), num_heads)
    masks = None
    if slot_masks is not None:
        masks = [
            None if m is None else m[:, None, :, :] for m in slot_masks
        ]
    out = att_cb_s(q, k, v, slot_spans, masks)
    return linear(merge_heads(out), params.w_o, params.b_o)
