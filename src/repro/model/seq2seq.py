"""The full Seq2Seq encoder-decoder model over batch layouts.

:class:`Seq2SeqModel` is the user-facing model object.  It consumes
:class:`~repro.core.layout.BatchLayout` objects — the common currency of
all batching schemes — and internally derives token matrices, separate
positional encodings and the correct masks, so callers never touch index
math.

Key entry points:

- :meth:`Seq2SeqModel.encode_layout` — run the encoder over a layout
  (optionally slot-wise),
- :meth:`Seq2SeqModel.greedy_decode` — autoregressive greedy decoding of
  every request in a layout, with per-request completion steps recorded
  (this is what early memory cleaning keys off),
- :meth:`Seq2SeqModel.encode_single` / :meth:`greedy_decode_single` —
  per-request reference paths used to validate ConcatBatching
  correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.config import ModelConfig
from repro.core.layout import BatchLayout
from repro.core.masks import (
    block_diagonal_mask,
    causal_block_mask,
    cross_attention_mask,
    padding_key_mask,
)
from repro.core.positional import sinusoidal_positional_encoding
from repro.model.decoder import decode_stack
from repro.model.encoder import encode
from repro.model.functional import linear
from repro.model.params import Seq2SeqParams, init_seq2seq
from repro.types import Request

__all__ = ["Seq2SeqModel", "GenerationResult"]


@dataclass
class GenerationResult:
    """Per-request outputs of a decoding run."""

    # request_id -> generated token ids (without BOS, including EOS if hit)
    outputs: dict[int, list[int]] = field(default_factory=dict)
    # request_id -> decode step (1-based) at which the request finished;
    # requests that exhausted the budget get the budget value.
    completion_step: dict[int, int] = field(default_factory=dict)
    steps_run: int = 0


class Seq2SeqModel:
    """Encoder-decoder transformer supporting all TCB batching schemes."""

    def __init__(self, config: ModelConfig, seed: int = 0, params: Optional[Seq2SeqParams] = None):
        self.config = config
        self.params = params if params is not None else init_seq2seq(config, seed)

    # ------------------------------------------------------------------ #
    # Embedding
    # ------------------------------------------------------------------ #

    def embed(self, tokens: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Token embedding + sinusoidal PE gathered at ``positions``."""
        if tokens.shape != positions.shape:
            raise ValueError(
                f"tokens {tokens.shape} and positions {positions.shape} differ"
            )
        emb = self.params.embedding[tokens]
        pe = sinusoidal_positional_encoding(
            positions, self.config.d_model, self.params.pe_table
        )
        return emb + pe

    # ------------------------------------------------------------------ #
    # Encoder
    # ------------------------------------------------------------------ #

    def encode_layout(
        self,
        layout: BatchLayout,
        *,
        separate_pe: bool = True,
        concat_mask: bool = True,
        slotted: bool = False,
    ) -> np.ndarray:
        """Run the encoder over a batch layout.

        ``separate_pe=False`` / ``concat_mask=False`` deliberately
        reproduce the *wrong* default-framework behaviour (used by tests
        to show why TCB's customisations are necessary).
        ``slotted=True`` computes self-attention per slot (Eq. 8).
        """
        seg = layout.segment_id_matrix()
        positions = (
            layout.position_matrix()
            if separate_pe
            else layout.naive_position_matrix()
        )
        tokens = layout.token_matrix(pad_token=self.config.pad_token)
        x = self.embed(tokens, positions)

        if slotted:
            spans_per_row = layout.slot_boundaries()
            spans = spans_per_row[0]
            if any(s != spans for s in spans_per_row):
                raise ValueError(
                    "slotted encoding requires identical slot spans per row"
                )
            # The batch tensor is trimmed to the effective width; clip the
            # slot spans accordingly and drop fully-padded trailing slots.
            w = seg.shape[1]
            spans = [(a, min(b, w)) for a, b in spans if a < w]
            slot_masks = [
                block_diagonal_mask(seg[:, a:b]) for (a, b) in spans
            ]
            return encode(
                self.params.encoder_layers,
                self.config.num_heads,
                x,
                slot_spans=spans,
                slot_masks=slot_masks,
            )

        if concat_mask:
            mask = block_diagonal_mask(seg)
        else:
            mask = padding_key_mask(seg)
        return encode(self.params.encoder_layers, self.config.num_heads, x, mask)

    def encode_single(self, tokens: Sequence[int]) -> np.ndarray:
        """Reference path: encode one request alone (no padding, no concat)."""
        t = np.asarray(tokens, dtype=np.int64)[None, :]
        pos = np.arange(t.shape[1], dtype=np.int64)[None, :]
        x = self.embed(t, pos)
        return encode(self.params.encoder_layers, self.config.num_heads, x)

    # ------------------------------------------------------------------ #
    # Decoder / generation
    # ------------------------------------------------------------------ #

    def project_logits(self, h: np.ndarray) -> np.ndarray:
        assert self.params.out_proj is not None
        return linear(h, self.params.out_proj, self.params.out_bias)

    def greedy_decode(
        self,
        layout: BatchLayout,
        max_new_tokens: int = 16,
        *,
        memory: Optional[np.ndarray] = None,
    ) -> GenerationResult:
        """Greedy autoregressive decoding of all requests in a layout.

        The decoder mirrors the encoder layout: each request gets a
        contiguous decoder segment with a budget of ``max_new_tokens``
        positions.  Masks are the concat-aware causal/cross masks, so the
        same routine is exact for naive (one request/row) and concatenated
        layouts alike.  KV-caching is intentionally omitted — the real
        engine is a correctness/measurement substrate, not a production
        GPU runtime (see DESIGN.md).
        """
        cfg = self.config
        if layout.num_requests == 0:
            return GenerationResult()
        if memory is None:
            memory = self.encode_layout(layout)
        enc_seg = layout.segment_id_matrix()

        rows = layout.rows
        b = len(rows)
        budget = max_new_tokens + 1  # +1 for BOS
        # Decoder geometry: segment i of a row occupies [i*budget, (i+1)*budget).
        max_segs = max((len(r.segments) for r in rows), default=0)
        if max_segs == 0:
            return GenerationResult()
        wd = max_segs * budget
        dec_tokens = np.full((b, wd), cfg.pad_token, dtype=np.int64)
        dec_seg = np.full((b, wd), -1, dtype=np.int64)
        dec_pos = np.zeros((b, wd), dtype=np.int64)

        # Per-request state.
        starts: dict[int, tuple[int, int]] = {}  # rid -> (row, seg_start)
        lengths: dict[int, int] = {}
        finished: dict[int, bool] = {}
        order: list[int] = []
        for k, row in enumerate(rows):
            for i, seg in enumerate(row.segments):
                rid = seg.request.request_id
                start = i * budget
                starts[rid] = (k, start)
                lengths[rid] = 1
                finished[rid] = False
                order.append(rid)
                dec_tokens[k, start] = cfg.bos_token
                dec_seg[k, start] = rid
                dec_pos[k, start] = 0

        result = GenerationResult(
            outputs={rid: [] for rid in order},
            completion_step={},
        )

        for step in range(1, max_new_tokens + 1):
            active = [rid for rid in order if not finished[rid]]
            if not active:
                break
            result.steps_run = step
            x = self.embed(dec_tokens, dec_pos)
            self_mask = causal_block_mask(dec_seg)
            cross_mask = cross_attention_mask(dec_seg, enc_seg)
            h = decode_stack(
                self.params.decoder_layers,
                cfg.num_heads,
                x,
                memory,
                self_mask,
                cross_mask,
            )
            logits = self.project_logits(h)
            for rid in active:
                k, start = starts[rid]
                cur = lengths[rid]
                nxt = int(np.argmax(logits[k, start + cur - 1]))
                result.outputs[rid].append(nxt)
                if nxt == cfg.eos_token or cur >= budget - 1:
                    finished[rid] = True
                    result.completion_step[rid] = step
                else:
                    dec_tokens[k, start + cur] = nxt
                    dec_seg[k, start + cur] = rid
                    dec_pos[k, start + cur] = cur
                    lengths[rid] = cur + 1

        for rid in order:
            result.completion_step.setdefault(rid, result.steps_run)
        return result

    def greedy_decode_single(
        self, tokens: Sequence[int], max_new_tokens: int = 16
    ) -> list[int]:
        """Reference path: greedy-decode one request alone."""
        layout = BatchLayout.naive(
            [
                Request(
                    request_id=0,
                    length=len(tokens),
                    tokens=tuple(int(t) for t in tokens),
                )
            ]
        )
        res = self.greedy_decode(layout, max_new_tokens)
        return res.outputs[0]
