"""Beam-search decoding under ConcatBatching.

Greedy decoding picks the argmax token each step; beam search keeps the
``beam_width`` best partial hypotheses per request.  Under
ConcatBatching this composes naturally with the layout machinery: every
(request, beam) pair gets its *own* decoder segment — so beams never
attend to each other — while cross-attention maps every beam back to
its request's encoder segment.

The latter needs a small generalisation of Eq. 6's id-equality masks:
:func:`mapped_cross_attention_mask` accepts an explicit
``beam-id → request-id`` mapping instead of requiring the decoder and
encoder to share ids.

Scoring is standard length-normalised log-probability; ``beam_width=1``
reduces exactly to greedy decoding (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.core.layout import BatchLayout
from repro.core.masks import causal_block_mask, cross_attention_mask
from repro.model.decoder import decode_stack
from repro.model.functional import log_softmax
from repro.model.seq2seq import Seq2SeqModel

__all__ = ["BeamResult", "beam_decode", "mapped_cross_attention_mask"]


def mapped_cross_attention_mask(
    dec_seg: np.ndarray,
    enc_seg: np.ndarray,
    beam_to_request: Mapping[int, int],
) -> np.ndarray:
    """Cross mask where decoder segment ids map onto encoder request ids.

    ``M[b, i, j] = 0`` iff ``beam_to_request[dec_seg[b, i]] ==
    enc_seg[b, j]`` (and neither side is padding).
    """
    dec = np.asarray(dec_seg)
    enc = np.asarray(enc_seg)
    if dec.shape[0] != enc.shape[0]:
        raise ValueError("batch mismatch between decoder and encoder maps")
    # Vectorise the mapping: unknown/padding ids map to -1, which the
    # canonical constructor treats as padding (attends to nothing).
    mapped = np.full_like(dec, -1)
    for k, v in beam_to_request.items():
        mapped[dec == k] = v
    return cross_attention_mask(mapped, enc)


@dataclass
class _Hypothesis:
    tokens: list[int] = field(default_factory=list)
    logprob: float = 0.0
    finished: bool = False

    def score(self, alpha: float) -> float:
        norm = max(1, len(self.tokens)) ** alpha
        return self.logprob / norm


@dataclass
class BeamResult:
    """Best hypothesis per request, with its normalised score."""

    outputs: dict[int, list[int]] = field(default_factory=dict)
    scores: dict[int, float] = field(default_factory=dict)
    steps_run: int = 0


def beam_decode(
    model: Seq2SeqModel,
    layout: BatchLayout,
    max_new_tokens: int = 16,
    *,
    beam_width: int = 4,
    length_penalty: float = 0.0,
) -> BeamResult:
    """Beam-search all requests of a concatenated layout jointly.

    ``length_penalty`` is the normalisation exponent α (0 = raw
    log-prob, 1 = full per-token normalisation).
    """
    if beam_width < 1:
        raise ValueError("beam_width must be >= 1")
    cfg = model.config
    if layout.num_requests == 0:
        return BeamResult()

    memory = model.encode_layout(layout)
    enc_seg = layout.segment_id_matrix()
    rows = layout.rows
    b = len(rows)
    budget = max_new_tokens + 1

    # Beam bookkeeping: beam id = request slot index * beam_width + k.
    requests = [(row_idx, seg) for row_idx, row in enumerate(rows) for seg in row.segments]
    beam_to_request: dict[int, int] = {}
    beams: dict[int, list[_Hypothesis]] = {}
    beam_row: dict[int, int] = {}
    beam_start: dict[int, int] = {}
    segs_per_row = [len(row.segments) for row in rows]
    max_segs = max(segs_per_row)
    wd = max_segs * beam_width * budget

    beam_id = 0
    per_row_cursor = [0] * b
    for row_idx, seg in requests:
        rid = seg.request.request_id
        for k in range(beam_width):
            beam_to_request[beam_id] = rid
            beams.setdefault(rid, []).append(_Hypothesis())
            beam_row[beam_id] = row_idx
            beam_start[beam_id] = per_row_cursor[row_idx]
            per_row_cursor[row_idx] += budget
            beam_id += 1

    request_beams: dict[int, list[int]] = {}
    for bid, rid in beam_to_request.items():
        request_beams.setdefault(rid, []).append(bid)

    def render() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        dec_tokens = np.full((b, wd), cfg.pad_token, dtype=np.int64)
        dec_seg = np.full((b, wd), -1, dtype=np.int64)
        dec_pos = np.zeros((b, wd), dtype=np.int64)
        for rid, bids in request_beams.items():
            for hyp, bid in zip(beams[rid], bids):
                row, start = beam_row[bid], beam_start[bid]
                seq = [cfg.bos_token, *hyp.tokens]
                dec_tokens[row, start : start + len(seq)] = seq
                dec_seg[row, start : start + len(seq)] = bid
                dec_pos[row, start : start + len(seq)] = np.arange(len(seq))
        return dec_tokens, dec_seg, dec_pos

    result = BeamResult()
    for step in range(1, max_new_tokens + 1):
        if all(h.finished for hyps in beams.values() for h in hyps):
            break
        result.steps_run = step
        dec_tokens, dec_seg, dec_pos = render()
        x = model.embed(dec_tokens, dec_pos)
        h = decode_stack(
            model.params.decoder_layers,
            cfg.num_heads,
            x,
            memory,
            causal_block_mask(dec_seg),
            mapped_cross_attention_mask(dec_seg, enc_seg, beam_to_request),
        )
        logp = log_softmax(model.project_logits(h), axis=-1)

        for rid, bids in request_beams.items():
            hyps = beams[rid]
            candidates: list[_Hypothesis] = []
            # At step 1 only the first beam is expanded (all beams are
            # identical empty hypotheses) to avoid duplicate candidates.
            active = bids[:1] if step == 1 else bids
            for hyp, bid in zip(hyps, bids):
                if bid not in active and not hyp.finished:
                    continue
                if hyp.finished:
                    candidates.append(hyp)
                    continue
                row, start = beam_row[bid], beam_start[bid]
                last = start + len(hyp.tokens)  # position of newest token
                token_logp = logp[row, last]
                top = np.argsort(token_logp)[::-1][:beam_width]
                for t in top:
                    t = int(t)
                    ended = t == cfg.eos_token or len(hyp.tokens) + 1 >= budget - 1
                    candidates.append(
                        _Hypothesis(
                            tokens=[*hyp.tokens, t],
                            logprob=hyp.logprob + float(token_logp[t]),
                            finished=ended,
                        )
                    )
            candidates.sort(key=lambda c: c.score(length_penalty), reverse=True)
            beams[rid] = candidates[:beam_width]
            # Pad with copies if fewer candidates than beams (all finished).
            while len(beams[rid]) < beam_width:
                beams[rid].append(beams[rid][-1])

    for rid, hyps in beams.items():
        best = max(hyps, key=lambda h: h.score(length_penalty))
        result.outputs[rid] = list(best.tokens)
        result.scores[rid] = best.score(length_penalty)
    return result
