"""A tiny deterministic tokenizer/vocabulary for examples and tests.

Real NLP tokenisation is out of scope (and irrelevant to the paper's
claims, which only depend on token *counts*); :class:`ToyVocab` provides a
reversible word-level mapping plus a random-sentence sampler so examples
can show readable inputs/outputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["ToyVocab"]

_DEFAULT_WORDS = (
    "the a of to and in that it is was for on are as with his they at be "
    "this have from or one had by word but not what all were we when your "
    "can said there use an each which she do how their if will up other "
    "about out many then them these so some her would make like him into "
    "time has look two more write go see number no way could people my "
    "than first water been call who oil its now find long down day did "
    "get come made may part over new sound take only little work know "
    "place year live me back give most very after thing our just name"
).split()


class ToyVocab:
    """Word-level vocabulary with PAD=0, EOS=1, BOS=2, UNK=3."""

    PAD, EOS, BOS, UNK = 0, 1, 2, 3

    def __init__(self, words: Sequence[str] | None = None):
        self.words = list(words) if words is not None else list(_DEFAULT_WORDS)
        self._to_id = {w: i + 4 for i, w in enumerate(self.words)}
        self._to_word = {i + 4: w for i, w in enumerate(self.words)}

    @property
    def size(self) -> int:
        return len(self.words) + 4

    def encode(self, sentence: str) -> list[int]:
        return [self._to_id.get(w, self.UNK) for w in sentence.split()]

    def decode(self, ids: Iterable[int]) -> str:
        out = []
        for i in ids:
            if i == self.EOS:
                break
            if i in (self.PAD, self.BOS):
                continue
            out.append(self._to_word.get(int(i), "<unk>"))
        return " ".join(out)

    def random_sentence(self, length: int, rng: np.random.Generator) -> str:
        idx = rng.integers(0, len(self.words), size=length)
        return " ".join(self.words[i] for i in idx)

    def random_tokens(self, length: int, rng: np.random.Generator) -> list[int]:
        return [int(t) for t in rng.integers(4, self.size, size=length)]
