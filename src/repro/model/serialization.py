"""Save/load model parameters as ``.npz`` checkpoints.

Flattens the :class:`~repro.model.params.Seq2SeqParams` tree into
namespaced arrays (``enc.0.self_attn.w_q`` …) plus the
:class:`~repro.config.ModelConfig` fields, and restores it exactly.
Round-tripping is bit-exact (tested), so a served model can be pinned
and shipped.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.config import ModelConfig
from repro.model.params import (
    AttentionParams,
    DecoderLayerParams,
    EncoderLayerParams,
    FeedForwardParams,
    LayerNormParams,
    Seq2SeqParams,
)

__all__ = ["save_params", "load_params"]

_ATTN_FIELDS = ("w_q", "w_k", "w_v", "w_o", "b_q", "b_k", "b_v", "b_o")


def _flatten(params: Seq2SeqParams) -> dict[str, np.ndarray]:
    out: dict[str, np.ndarray] = {
        "embedding": params.embedding,
        "pe_table": params.pe_table,
    }
    if params.out_proj is not None:
        out["out_proj"] = params.out_proj
    if params.out_bias is not None:
        out["out_bias"] = params.out_bias

    def put_attn(prefix: str, attn: AttentionParams) -> None:
        for f in _ATTN_FIELDS:
            out[f"{prefix}.{f}"] = getattr(attn, f)

    def put_ffn(prefix: str, ffn: FeedForwardParams) -> None:
        for f in ("w1", "b1", "w2", "b2"):
            out[f"{prefix}.{f}"] = getattr(ffn, f)

    def put_norm(prefix: str, norm: LayerNormParams) -> None:
        out[f"{prefix}.gamma"] = norm.gamma
        out[f"{prefix}.beta"] = norm.beta

    for i, layer in enumerate(params.encoder_layers):
        put_attn(f"enc.{i}.self_attn", layer.self_attn)
        put_ffn(f"enc.{i}.ffn", layer.ffn)
        put_norm(f"enc.{i}.norm1", layer.norm1)
        put_norm(f"enc.{i}.norm2", layer.norm2)
    for i, layer in enumerate(params.decoder_layers):
        put_attn(f"dec.{i}.self_attn", layer.self_attn)
        put_attn(f"dec.{i}.cross_attn", layer.cross_attn)
        put_ffn(f"dec.{i}.ffn", layer.ffn)
        put_norm(f"dec.{i}.norm1", layer.norm1)
        put_norm(f"dec.{i}.norm2", layer.norm2)
        put_norm(f"dec.{i}.norm3", layer.norm3)
    return out


def save_params(params: Seq2SeqParams, path: Union[str, Path]) -> None:
    """Write a checkpoint (config JSON + flattened weights) to ``path``."""
    path = Path(path)
    arrays = _flatten(params)
    config_json = json.dumps(dataclasses.asdict(params.config))
    np.savez(
        path, __config__=np.frombuffer(config_json.encode(), dtype=np.uint8), **arrays
    )


def _take_attn(data, prefix: str) -> AttentionParams:
    return AttentionParams(**{f: data[f"{prefix}.{f}"] for f in _ATTN_FIELDS})


def _take_ffn(data, prefix: str) -> FeedForwardParams:
    return FeedForwardParams(
        w1=data[f"{prefix}.w1"],
        b1=data[f"{prefix}.b1"],
        w2=data[f"{prefix}.w2"],
        b2=data[f"{prefix}.b2"],
    )


def _take_norm(data, prefix: str) -> LayerNormParams:
    return LayerNormParams(
        gamma=data[f"{prefix}.gamma"], beta=data[f"{prefix}.beta"]
    )


def load_params(path: Union[str, Path]) -> Seq2SeqParams:
    """Restore a checkpoint written by :func:`save_params`."""
    path = Path(path)
    if not path.suffix:
        path = path.with_suffix(".npz")
    with np.load(path) as data:
        config_json = bytes(data["__config__"]).decode()
        config = ModelConfig(**json.loads(config_json))
        enc_layers = []
        for i in range(config.num_encoder_layers):
            enc_layers.append(
                EncoderLayerParams(
                    self_attn=_take_attn(data, f"enc.{i}.self_attn"),
                    ffn=_take_ffn(data, f"enc.{i}.ffn"),
                    norm1=_take_norm(data, f"enc.{i}.norm1"),
                    norm2=_take_norm(data, f"enc.{i}.norm2"),
                )
            )
        dec_layers = []
        for i in range(config.num_decoder_layers):
            dec_layers.append(
                DecoderLayerParams(
                    self_attn=_take_attn(data, f"dec.{i}.self_attn"),
                    cross_attn=_take_attn(data, f"dec.{i}.cross_attn"),
                    ffn=_take_ffn(data, f"dec.{i}.ffn"),
                    norm1=_take_norm(data, f"dec.{i}.norm1"),
                    norm2=_take_norm(data, f"dec.{i}.norm2"),
                    norm3=_take_norm(data, f"dec.{i}.norm3"),
                )
            )
        return Seq2SeqParams(
            config=config,
            embedding=data["embedding"],
            pe_table=data["pe_table"],
            encoder_layers=enc_layers,
            decoder_layers=dec_layers,
            out_proj=data["out_proj"] if "out_proj" in data else None,
            out_bias=data["out_bias"] if "out_bias" in data else None,
        )
