"""Pure-NumPy transformer substrate (encoder-decoder Seq2Seq).

This package reimplements, from scratch, everything the paper's inference
engine needs from PyTorch: embeddings + positional encoding, multi-head
attention with arbitrary additive masks, feed-forward blocks, layer norm,
encoder and decoder stacks, and greedy autoregressive generation.

The code is written in the vectorised NumPy idiom (no Python loops over
batch or token dimensions in hot paths; contiguous arrays; in-place
updates where profitable) so the *measured* engine mode is fast enough to
run real end-to-end tests.
"""

from repro.model.functional import (
    gelu,
    layer_norm,
    linear,
    relu,
    softmax,
)
from repro.model.params import (
    AttentionParams,
    DecoderLayerParams,
    EncoderLayerParams,
    FeedForwardParams,
    LayerNormParams,
    Seq2SeqParams,
    init_seq2seq,
)
from repro.model.attention import multi_head_attention, split_heads, merge_heads
from repro.model.seq2seq import Seq2SeqModel
from repro.model.vocab import ToyVocab

__all__ = [
    "softmax",
    "relu",
    "gelu",
    "layer_norm",
    "linear",
    "AttentionParams",
    "FeedForwardParams",
    "LayerNormParams",
    "EncoderLayerParams",
    "DecoderLayerParams",
    "Seq2SeqParams",
    "init_seq2seq",
    "multi_head_attention",
    "split_heads",
    "merge_heads",
    "Seq2SeqModel",
    "ToyVocab",
]
