"""Parameter containers and initialisation for the NumPy Seq2Seq model.

Weights live in plain dataclasses of NumPy arrays — a deliberately
torch-free "parameter tree".  Initialisation is Xavier-uniform with a
seeded :class:`numpy.random.Generator` so every test and example is
reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.config import ModelConfig

__all__ = [
    "AttentionParams",
    "FeedForwardParams",
    "LayerNormParams",
    "EncoderLayerParams",
    "DecoderLayerParams",
    "Seq2SeqParams",
    "init_seq2seq",
]


def _xavier(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


@dataclass
class AttentionParams:
    """Projection weights for one multi-head attention block (Eq. 3)."""

    w_q: np.ndarray
    w_k: np.ndarray
    w_v: np.ndarray
    w_o: np.ndarray
    b_q: np.ndarray
    b_k: np.ndarray
    b_v: np.ndarray
    b_o: np.ndarray

    @staticmethod
    def init(rng: np.random.Generator, d_model: int) -> "AttentionParams":
        return AttentionParams(
            w_q=_xavier(rng, d_model, d_model),
            w_k=_xavier(rng, d_model, d_model),
            w_v=_xavier(rng, d_model, d_model),
            w_o=_xavier(rng, d_model, d_model),
            b_q=np.zeros(d_model),
            b_k=np.zeros(d_model),
            b_v=np.zeros(d_model),
            b_o=np.zeros(d_model),
        )


@dataclass
class FeedForwardParams:
    w1: np.ndarray
    b1: np.ndarray
    w2: np.ndarray
    b2: np.ndarray

    @staticmethod
    def init(rng: np.random.Generator, d_model: int, d_ff: int) -> "FeedForwardParams":
        return FeedForwardParams(
            w1=_xavier(rng, d_model, d_ff),
            b1=np.zeros(d_ff),
            w2=_xavier(rng, d_ff, d_model),
            b2=np.zeros(d_model),
        )


@dataclass
class LayerNormParams:
    gamma: np.ndarray
    beta: np.ndarray

    @staticmethod
    def init(d_model: int) -> "LayerNormParams":
        return LayerNormParams(gamma=np.ones(d_model), beta=np.zeros(d_model))


@dataclass
class EncoderLayerParams:
    self_attn: AttentionParams
    ffn: FeedForwardParams
    norm1: LayerNormParams
    norm2: LayerNormParams

    @staticmethod
    def init(rng: np.random.Generator, d_model: int, d_ff: int) -> "EncoderLayerParams":
        return EncoderLayerParams(
            self_attn=AttentionParams.init(rng, d_model),
            ffn=FeedForwardParams.init(rng, d_model, d_ff),
            norm1=LayerNormParams.init(d_model),
            norm2=LayerNormParams.init(d_model),
        )


@dataclass
class DecoderLayerParams:
    self_attn: AttentionParams
    cross_attn: AttentionParams
    ffn: FeedForwardParams
    norm1: LayerNormParams
    norm2: LayerNormParams
    norm3: LayerNormParams

    @staticmethod
    def init(rng: np.random.Generator, d_model: int, d_ff: int) -> "DecoderLayerParams":
        return DecoderLayerParams(
            self_attn=AttentionParams.init(rng, d_model),
            cross_attn=AttentionParams.init(rng, d_model),
            ffn=FeedForwardParams.init(rng, d_model, d_ff),
            norm1=LayerNormParams.init(d_model),
            norm2=LayerNormParams.init(d_model),
            norm3=LayerNormParams.init(d_model),
        )


@dataclass
class Seq2SeqParams:
    """Full parameter tree for the encoder-decoder model."""

    config: ModelConfig
    embedding: np.ndarray  # (vocab, d_model), shared encoder/decoder
    pe_table: np.ndarray  # (max_len, d_model) sinusoid table
    encoder_layers: list[EncoderLayerParams] = field(default_factory=list)
    decoder_layers: list[DecoderLayerParams] = field(default_factory=list)
    out_proj: Optional[np.ndarray] = None  # (d_model, vocab)
    out_bias: Optional[np.ndarray] = None

    def num_parameters(self) -> int:
        total = self.embedding.size
        if self.out_proj is not None:
            total += self.out_proj.size + (
                self.out_bias.size if self.out_bias is not None else 0
            )
        for layer in self.encoder_layers:
            for attn in (layer.self_attn,):
                total += sum(
                    getattr(attn, f).size
                    for f in ("w_q", "w_k", "w_v", "w_o", "b_q", "b_k", "b_v", "b_o")
                )
            total += layer.ffn.w1.size + layer.ffn.b1.size
            total += layer.ffn.w2.size + layer.ffn.b2.size
            total += 2 * (layer.norm1.gamma.size + layer.norm1.beta.size)
        for layer in self.decoder_layers:
            for attn in (layer.self_attn, layer.cross_attn):
                total += sum(
                    getattr(attn, f).size
                    for f in ("w_q", "w_k", "w_v", "w_o", "b_q", "b_k", "b_v", "b_o")
                )
            total += layer.ffn.w1.size + layer.ffn.b1.size
            total += layer.ffn.w2.size + layer.ffn.b2.size
            total += 3 * (layer.norm1.gamma.size + layer.norm1.beta.size)
        return int(total)


def init_seq2seq(config: ModelConfig, seed: int = 0) -> Seq2SeqParams:
    """Initialise the full model from a seed (Xavier-uniform weights)."""
    from repro.core.positional import sinusoidal_encoding

    rng = np.random.default_rng(seed)
    d, d_ff = config.d_model, config.ffn_dim
    return Seq2SeqParams(
        config=config,
        embedding=rng.normal(0.0, d**-0.5, size=(config.vocab_size, d)),
        pe_table=sinusoidal_encoding(config.max_len + 1, d),
        encoder_layers=[
            EncoderLayerParams.init(rng, d, d_ff)
            for _ in range(config.num_encoder_layers)
        ],
        decoder_layers=[
            DecoderLayerParams.init(rng, d, d_ff)
            for _ in range(config.num_decoder_layers)
        ],
        out_proj=_xavier(rng, d, config.vocab_size),
        out_bias=np.zeros(config.vocab_size),
    )
