"""Encoder-only classification model over ConcatBatching layouts.

The paper motivates variable-length serving with GLUE-style workloads —
which are *classification*, not generation: one label per sentence, no
decoder.  This module provides that substrate:

- :class:`ClassifierModel` — the shared transformer encoder + per-request
  mean-pooling + a linear head,
- pooling is **segment-aware**: each concatenated request is pooled over
  exactly its own positions, so (with the §4.1 masks/PE) a request's
  logits are identical whether it was batched alone or concatenated —
  verified in ``tests/test_classifier.py``.

Classification batches also skip the decode pass; use
``cost_model.batch_time(..., include_decode=False)`` (or
``layout_time(..., include_decode=False)``) when simulating
encoder-only services.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.config import ModelConfig
from repro.core.layout import BatchLayout
from repro.model.params import Seq2SeqParams, _xavier, init_seq2seq
from repro.model.seq2seq import Seq2SeqModel
from repro.rng import ensure_rng

__all__ = ["ClassifierModel"]


class ClassifierModel:
    """Transformer encoder + segment-aware pooling + linear head."""

    def __init__(
        self,
        config: ModelConfig,
        num_classes: int,
        seed: int = 0,
        encoder_params: Optional[Seq2SeqParams] = None,
        *,
        rng: Optional[np.random.Generator] = None,
    ):
        if num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        self.config = config
        self.num_classes = num_classes
        # Reuse the Seq2Seq encoder stack (decoder params unused).
        self._backbone = Seq2SeqModel(
            config,
            seed=seed,
            params=encoder_params,
        )
        # Injected Generator wins; otherwise derive from the seed exactly
        # as before (head weights stay bit-identical for a given seed).
        rng = ensure_rng(rng, default_seed=seed + 1)
        self.head_w = _xavier(rng, config.d_model, num_classes)
        self.head_b = np.zeros(num_classes)

    # ------------------------------------------------------------------ #

    def pooled_features(self, layout: BatchLayout) -> dict[int, np.ndarray]:
        """Mean-pool encoder states per request segment."""
        enc = self._backbone.encode_layout(layout)
        out: dict[int, np.ndarray] = {}
        for row_idx, seg in layout.segments():
            states = enc[row_idx, seg.start : seg.end]
            out[seg.request.request_id] = states.mean(axis=0)
        return out

    def logits(self, layout: BatchLayout) -> dict[int, np.ndarray]:
        """Per-request class logits for every request in the layout."""
        feats = self.pooled_features(layout)
        return {
            rid: f @ self.head_w + self.head_b for rid, f in feats.items()
        }

    def classify(self, layout: BatchLayout) -> dict[int, int]:
        """Per-request argmax class labels."""
        return {rid: int(np.argmax(l)) for rid, l in self.logits(layout).items()}

    def classify_single(self, tokens: Sequence[int]) -> int:
        """Reference path: classify one request in isolation."""
        states = self._backbone.encode_single(tokens)[0]
        logits = states.mean(axis=0) @ self.head_w + self.head_b
        return int(np.argmax(logits))
