"""KV-cached incremental decoding for ConcatBatching.

:meth:`Seq2SeqModel.greedy_decode` recomputes the whole decoder prefix
at every step — simple and obviously correct, but O(steps²) work.  This
module implements the standard production optimisation: per-layer
key/value caches so each step computes only the *new* token positions
(one per active request), while remaining numerically exact.

Correctness argument: decoder self-attention under ConcatBatching is
causal within a segment and blocked across segments, so a position's
layer-(l−1) hidden state never changes once computed — cached K/V
entries are final.  Cross-attention keys/values depend only on the
encoder memory and are computed once per layer.

:class:`IncrementalDecoder` mirrors the layout conventions of
``greedy_decode`` (each request gets a contiguous decoder span of
``max_new_tokens + 1`` positions) and is validated token-for-token
against it in ``tests/test_incremental.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.layout import BatchLayout
from repro.core.masks import additive_mask
from repro.model.functional import layer_norm, linear, softmax
from repro.model.params import AttentionParams, DecoderLayerParams
from repro.model.feedforward import feed_forward
from repro.model.seq2seq import GenerationResult, Seq2SeqModel

__all__ = ["IncrementalDecoder", "greedy_decode_incremental"]


def _project_heads(
    params: AttentionParams, x: np.ndarray, which: str, num_heads: int
) -> np.ndarray:
    """Project ``(B, m, d)`` and split to ``(B, H, m, d/H)``."""
    w = getattr(params, f"w_{which}")
    b = getattr(params, f"b_{which}")
    out = linear(x, w, b)
    bsz, m, d = out.shape
    return out.reshape(bsz, m, num_heads, d // num_heads).transpose(0, 2, 1, 3)


def _merge(x: np.ndarray) -> np.ndarray:
    """``(B, H, m, d/H) -> (B, m, d)``."""
    b, h, m, dh = x.shape
    return np.ascontiguousarray(x.transpose(0, 2, 1, 3)).reshape(b, m, h * dh)


@dataclass
class _LayerCache:
    """Per-decoder-layer cache state."""

    # Self-attention K/V at every decoder position: (B, H, Wd, d/H).
    self_k: np.ndarray
    self_v: np.ndarray
    # Cross-attention K/V over the encoder memory: (B, H, We, d/H).
    cross_k: np.ndarray
    cross_v: np.ndarray


class IncrementalDecoder:
    """Step-wise greedy decoder with per-layer KV caches."""

    def __init__(self, model: Seq2SeqModel, layout: BatchLayout, max_new_tokens: int):
        self.model = model
        self.layout = layout
        self.max_new_tokens = max_new_tokens
        cfg = model.config
        self.budget = max_new_tokens + 1

        rows = layout.rows
        self.b = len(rows)
        max_segs = max((len(r.segments) for r in rows), default=0)
        self.wd = max_segs * self.budget
        if max_segs == 0:
            raise ValueError("layout holds no requests")

        # Encoder memory and its segment map.
        self.memory = model.encode_layout(layout)
        self.enc_seg = layout.segment_id_matrix()

        # Decoder position bookkeeping (same conventions as greedy_decode).
        self.dec_tokens = np.full((self.b, self.wd), cfg.pad_token, dtype=np.int64)
        self.dec_seg = np.full((self.b, self.wd), -1, dtype=np.int64)
        self.dec_pos = np.zeros((self.b, self.wd), dtype=np.int64)
        self.starts: dict[int, tuple[int, int]] = {}
        self.lengths: dict[int, int] = {}
        self.finished: dict[int, bool] = {}
        self.order: list[int] = []
        for k, row in enumerate(rows):
            for i, seg in enumerate(row.segments):
                rid = seg.request.request_id
                start = i * self.budget
                self.starts[rid] = (k, start)
                self.lengths[rid] = 1
                self.finished[rid] = False
                self.order.append(rid)
                self.dec_tokens[k, start] = cfg.bos_token
                self.dec_seg[k, start] = rid
                self.dec_pos[k, start] = 0

        # Allocate caches.
        h, dh = cfg.num_heads, cfg.head_dim
        we = self.memory.shape[1]
        self.caches: list[_LayerCache] = []
        for layer in model.params.decoder_layers:
            cross_k = _project_heads(layer.cross_attn, self.memory, "k", h)
            cross_v = _project_heads(layer.cross_attn, self.memory, "v", h)
            self.caches.append(
                _LayerCache(
                    self_k=np.zeros((self.b, h, self.wd, dh)),
                    self_v=np.zeros((self.b, h, self.wd, dh)),
                    cross_k=cross_k,
                    cross_v=cross_v,
                )
            )
        # Cross-attention key mask (per batch row): hide other segments'
        # encoder positions and padding; computed per step for the active
        # query's segment.
        self._processed = np.zeros((self.b, self.wd), dtype=bool)
        # Prime the caches with the BOS positions.
        self._forward_positions(self._bos_positions())

    # ------------------------------------------------------------------ #

    def _bos_positions(self) -> list[tuple[int, int, int]]:
        """(row, index, request_id) of every BOS token."""
        return [
            (k, start, rid) for rid, (k, start) in self.starts.items()
        ]

    def _forward_positions(
        self, positions: list[tuple[int, int, int]]
    ) -> np.ndarray:
        """Run the decoder stack for the given new positions only.

        Returns logits of shape ``(len(positions), vocab)`` in the order
        given.  Updates the self-attention caches in place.
        """
        cfg = self.model.config
        h = cfg.num_heads
        m = len(positions)
        rows = np.array([p[0] for p in positions])
        idxs = np.array([p[1] for p in positions])

        # Gather embeddings of the new tokens: (1 pseudo-batch, m, d).
        tokens = self.dec_tokens[rows, idxs]
        pos = self.dec_pos[rows, idxs]
        x = self.model.embed(tokens[None, :], pos[None, :])[0]  # (m, d)

        # Per-position masks against the full decoder width / enc width.
        q_seg = self.dec_seg[rows, idxs]  # (m,)
        q_pos = self.dec_pos[rows, idxs]
        self_mask = additive_mask(
            (self.dec_seg[rows] == q_seg[:, None])
            & (self.dec_pos[rows] <= q_pos[:, None])
            & self._processed[rows]
        )  # (m, Wd)
        cross_mask = additive_mask(
            self.enc_seg[rows] == q_seg[:, None]
        )  # (m, We)

        # Mark the new positions processed (visible to themselves).
        self._processed[rows, idxs] = True
        self_mask[np.arange(m), idxs] = 0.0

        hstate = x  # (m, d)
        for layer, cache in zip(self.model.params.decoder_layers, self.caches):
            hstate = self._layer_step(
                layer, cache, hstate, rows, idxs, self_mask, cross_mask, h
            )
        logits = linear(
            hstate, self.model.params.out_proj, self.model.params.out_bias
        )
        return logits

    def _layer_step(
        self,
        layer: DecoderLayerParams,
        cache: _LayerCache,
        x: np.ndarray,
        rows: np.ndarray,
        idxs: np.ndarray,
        self_mask: np.ndarray,
        cross_mask: np.ndarray,
        num_heads: int,
    ) -> np.ndarray:
        m, d = x.shape
        dh = d // num_heads
        scale = 1.0 / np.sqrt(dh)

        # --- masked self-attention over the cache ---------------------- #
        q = linear(x, layer.self_attn.w_q, layer.self_attn.b_q)
        k_new = linear(x, layer.self_attn.w_k, layer.self_attn.b_k)
        v_new = linear(x, layer.self_attn.w_v, layer.self_attn.b_v)
        # Write new K/V into the cache at (row, head, idx).
        cache.self_k[rows, :, idxs, :] = k_new.reshape(m, num_heads, dh)
        cache.self_v[rows, :, idxs, :] = v_new.reshape(m, num_heads, dh)

        qh = q.reshape(m, num_heads, dh)  # (m, H, dh)
        k_rows = cache.self_k[rows]  # (m, H, Wd, dh)
        v_rows = cache.self_v[rows]
        scores = np.einsum("mhd,mhwd->mhw", qh, k_rows) * scale
        scores = scores + self_mask[:, None, :]
        attn = softmax(scores, axis=-1)
        ctx = np.einsum("mhw,mhwd->mhd", attn, v_rows).reshape(m, d)
        ctx = linear(ctx, layer.self_attn.w_o, layer.self_attn.b_o)
        x = layer_norm(x + ctx, layer.norm1.gamma, layer.norm1.beta)

        # --- cross-attention over cached encoder K/V ------------------- #
        q2 = linear(x, layer.cross_attn.w_q, layer.cross_attn.b_q).reshape(
            m, num_heads, dh
        )
        ck = cache.cross_k[rows]  # (m, H, We, dh)
        cv = cache.cross_v[rows]
        scores2 = np.einsum("mhd,mhwd->mhw", q2, ck) * scale
        scores2 = scores2 + cross_mask[:, None, :]
        attn2 = softmax(scores2, axis=-1)
        ctx2 = np.einsum("mhw,mhwd->mhd", attn2, cv).reshape(m, d)
        ctx2 = linear(ctx2, layer.cross_attn.w_o, layer.cross_attn.b_o)
        x = layer_norm(x + ctx2, layer.norm2.gamma, layer.norm2.beta)

        # --- feed forward ---------------------------------------------- #
        ffn = feed_forward(layer.ffn, x)
        return layer_norm(x + ffn, layer.norm3.gamma, layer.norm3.beta)

    # ------------------------------------------------------------------ #

    def run(self) -> GenerationResult:
        cfg = self.model.config
        result = GenerationResult(
            outputs={rid: [] for rid in self.order}, completion_step={}
        )
        # Logits for the BOS positions were produced during priming; we
        # recompute the next-token choice from the last processed position
        # at each step for clarity.
        last_logits: dict[int, np.ndarray] = {}
        # Prime pass already ran in __init__ via _forward_positions; rerun
        # per-step from the current frontier.
        frontier = {
            rid: (k, start) for rid, (k, start) in self.starts.items()
        }
        # Recompute BOS logits (cache already holds BOS K/V, and a second
        # forward of the same position would corrupt `_processed`; instead
        # we saved nothing — so do the first argmax from a dedicated pass).
        logits = self._frontier_logits()
        for step in range(1, self.max_new_tokens + 1):
            active = [rid for rid in self.order if not self.finished[rid]]
            if not active:
                break
            result.steps_run = step
            new_positions: list[tuple[int, int, int]] = []
            for rid in active:
                nxt = int(np.argmax(logits[rid]))
                result.outputs[rid].append(nxt)
                cur = self.lengths[rid]
                if nxt == cfg.eos_token or cur >= self.budget - 1:
                    self.finished[rid] = True
                    result.completion_step[rid] = step
                else:
                    k, start = self.starts[rid]
                    self.dec_tokens[k, start + cur] = nxt
                    self.dec_seg[k, start + cur] = rid
                    self.dec_pos[k, start + cur] = cur
                    self.lengths[rid] = cur + 1
                    new_positions.append((k, start + cur, rid))
            if not new_positions:
                break
            out = self._forward_positions(new_positions)
            logits = {
                rid: out[i] for i, (_, _, rid) in enumerate(new_positions)
            }
        for rid in self.order:
            result.completion_step.setdefault(rid, result.steps_run)
        return result

    def _frontier_logits(self) -> dict[int, np.ndarray]:
        """Logits at each request's last processed position (BOS prime).

        The priming pass in ``__init__`` already wrote BOS K/V into the
        caches; here we recompute the BOS hidden states *reading* from
        those caches (cheap: one position per request, no cache writes
        needed because writing identical values is idempotent).
        """
        positions = self._bos_positions()
        out = self._forward_positions(positions)
        return {rid: out[i] for i, (_, _, rid) in enumerate(positions)}


def greedy_decode_incremental(
    model: Seq2SeqModel, layout: BatchLayout, max_new_tokens: int = 16
) -> GenerationResult:
    """KV-cached greedy decoding; exact match of ``model.greedy_decode``."""
    if layout.num_requests == 0:
        return GenerationResult()
    return IncrementalDecoder(model, layout, max_new_tokens).run()
