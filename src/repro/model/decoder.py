"""Transformer decoder stack (masked self-attention + cross-attention).

Under ConcatBatching the decoder needs two customized masks:

- self-attention: causal *within* each concatenated request's segment and
  blocked *across* segments (:func:`repro.core.masks.causal_block_mask`),
- cross-attention: a decoder token of request *r* attends only to the
  encoder positions of request *r*
  (:func:`repro.core.masks.cross_attention_mask`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.model.attention import multi_head_attention
from repro.model.feedforward import feed_forward
from repro.model.functional import layer_norm
from repro.model.params import DecoderLayerParams

__all__ = ["decoder_layer", "decode_stack"]


def decoder_layer(
    params: DecoderLayerParams,
    num_heads: int,
    x: np.ndarray,
    memory: np.ndarray,
    self_mask: Optional[np.ndarray] = None,
    cross_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    attn = multi_head_attention(params.self_attn, num_heads, x, mask=self_mask)
    x = layer_norm(x + attn, params.norm1.gamma, params.norm1.beta)
    cross = multi_head_attention(
        params.cross_attn, num_heads, x, key_value_input=memory, mask=cross_mask
    )
    x = layer_norm(x + cross, params.norm2.gamma, params.norm2.beta)
    ffn = feed_forward(params.ffn, x)
    return layer_norm(x + ffn, params.norm3.gamma, params.norm3.beta)


def decode_stack(
    layers: Sequence[DecoderLayerParams],
    num_heads: int,
    x: np.ndarray,
    memory: np.ndarray,
    self_mask: Optional[np.ndarray] = None,
    cross_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    h = x
    for layer in layers:
        h = decoder_layer(layer, num_heads, h, memory, self_mask, cross_mask)
    return h
