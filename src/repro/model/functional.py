"""Stateless numeric primitives (re-exported from :mod:`repro.numerics`).

The implementations live in a dependency-free leaf module so that
:mod:`repro.core` can use them without importing the model package.
"""

from repro.numerics import gelu, layer_norm, linear, log_softmax, relu, softmax

__all__ = ["softmax", "log_softmax", "relu", "gelu", "layer_norm", "linear"]
