"""Microbenchmarks: scheduler select, queue churn, cost-model eval.

Every benchmark here times the fast path *and* its reference oracle on
identical inputs, asserting equal observable outputs as it goes — a
benchmark that silently diverged from the oracle would be measuring the
wrong thing.  Timings are best-of-``repeats`` wall clock, the standard
way to suppress scheduler noise on a shared machine.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.config import BatchConfig, SchedulerConfig
from repro.core.layout import BatchLayout
from repro.engine.cost_model import GPUCostModel
from repro.scheduling.das import DASScheduler
from repro.scheduling.queue import RequestQueue, _ReferenceRequestQueue
from repro.bench.workloads import bench_requests
from repro.types import Request

__all__ = ["bench_select", "bench_queue_churn", "bench_cost_model"]


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_select(
    n: int,
    seed: int = 0,
    *,
    repeats: int = 3,
    num_rows: int = 8,
    row_length: int = 64,
) -> dict:
    """DAS select over ``n`` queued requests: fast vs reference oracle."""
    reqs = bench_requests(n, seed, max_length=row_length)
    batch = BatchConfig(num_rows=num_rows, row_length=row_length)
    cfg = SchedulerConfig()
    fast = DASScheduler(batch, cfg)
    ref = DASScheduler(batch, cfg, reference=True)

    fast_rows = [[r.request_id for r in row] for row in fast.select(reqs).rows]
    ref_rows = [[r.request_id for r in row] for row in ref.select(reqs).rows]
    if fast_rows != ref_rows:  # pragma: no cover - equivalence is tested
        raise AssertionError("fast select diverged from reference oracle")

    fast_s = _best_of(lambda: fast.select(reqs), repeats)
    ref_s = _best_of(lambda: ref.select(reqs), repeats)
    return {
        "n": n,
        "fast_s": fast_s,
        "reference_s": ref_s,
        "speedup": ref_s / fast_s if fast_s > 0 else float("inf"),
    }


def _churn(queue: RequestQueue, reqs: list[Request]) -> tuple[int, int]:
    """A deterministic mixed-op script: add / delay-poll / expire / take /
    requeue / abandon, shaped like a serving loop under load."""
    now = 0.0
    polls = 0
    for i, r in enumerate(reqs):
        queue.add(r)
        now = r.arrival
        if i % 5 == 0:
            queue.queue_delay(now)
            polls += 1
        if i % 64 == 63:
            queue.expire(now)
        if i % 97 == 96:
            available = queue.waiting(now)
            batch = list(available[:8])
            taken = queue.take(batch)
            # Half go back (a failed dispatch), half are abandoned.
            queue.requeue(taken[::2])
            queue.abandon(taken[1::2])
    queue.expire(now + 60.0)
    return polls, queue.queued_tokens


def bench_queue_churn(n: int = 20000, seed: int = 0, *, repeats: int = 3) -> dict:
    """Indexed ``RequestQueue`` vs the dict+scan reference on one script."""
    reqs = bench_requests(n, seed)

    fast_q = RequestQueue()
    ref_q = _ReferenceRequestQueue()
    _churn(fast_q, reqs)
    _churn(ref_q, reqs)
    if (
        fast_q.queued_tokens != ref_q.queued_tokens
        or fast_q.waiting_ids() != ref_q.waiting_ids()
        or [r.request_id for r in fast_q.expired]
        != [r.request_id for r in ref_q.expired]
    ):  # pragma: no cover - equivalence is tested
        raise AssertionError("fast queue diverged from reference oracle")

    fast_s = _best_of(lambda: _churn(RequestQueue(), reqs), repeats)
    ref_s = _best_of(lambda: _churn(_ReferenceRequestQueue(), reqs), repeats)
    return {
        "ops": n,
        "fast_s": fast_s,
        "reference_s": ref_s,
        "speedup": ref_s / fast_s if fast_s > 0 else float("inf"),
    }


def _layout_pool(seed: int, shapes: int, num_rows: int, row_length: int) -> list:
    """Distinct layouts reusing a small set of shapes, like a batch sweep."""
    pool: list[BatchLayout] = []
    reqs = bench_requests(shapes * num_rows * 4, seed, max_length=row_length)
    it = iter(reqs)
    for _ in range(shapes):
        layout = BatchLayout(num_rows=num_rows, row_length=row_length)
        for row in layout.rows:
            for r in it:
                if not row.can_fit(r.length):
                    break
                row.add(r)
        pool.append(layout)
    return pool


def bench_cost_model(
    evals: int = 50000,
    seed: int = 0,
    *,
    repeats: int = 3,
    shapes: int = 64,
) -> dict:
    """Memoized ``layout_time`` vs direct recomputation over a shape pool."""
    model = GPUCostModel.calibrated()
    pool = _layout_pool(seed, shapes, num_rows=8, row_length=64)

    for layout in pool:  # equal bits, memo warm or cold
        direct = model._batch_time(*model.layout_work(layout), True)
        if model.layout_time(layout) != direct:  # pragma: no cover
            raise AssertionError("memoized cost diverged from direct compute")

    def memoized() -> None:
        for i in range(evals):
            model.layout_time(pool[i % shapes])

    def direct() -> None:
        for i in range(evals):
            layout = pool[i % shapes]
            tokens, entries, num_slots = model.layout_work(layout)
            model._batch_time(tokens, entries, num_slots, True)

    memo_s = _best_of(memoized, repeats)
    direct_s = _best_of(direct, repeats)
    return {
        "evals": evals,
        "fast_s": memo_s,
        "reference_s": direct_s,
        "speedup": direct_s / memo_s if memo_s > 0 else float("inf"),
    }
