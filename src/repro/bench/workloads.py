"""Seeded synthetic workloads for the microbenchmarks.

Separate from :mod:`repro.workload` on purpose: benchmark inputs need to
scale to 50k queued requests in milliseconds of setup, not follow the
paper's arrival processes.  Determinism still goes through
:func:`repro.rng.ensure_rng` (TCB002 — no global RNG), so two machines
benchmark exactly the same request sets.
"""

from __future__ import annotations

from repro.rng import SeedLike, ensure_rng
from repro.types import Request

__all__ = ["bench_requests"]


def bench_requests(
    n: int,
    seed: SeedLike = 0,
    *,
    max_length: int = 32,
    rate: float = 200.0,
) -> list[Request]:
    """``n`` requests with Poisson arrivals, uniform lengths, mixed weights.

    Lengths span ``1..max_length`` so a scheduler benchmark sees the
    full utility spread; slacks span half a second to thirty so expiry
    benchmarks have a steady trickle of deadline casualties.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    rng = ensure_rng(seed)
    lengths = rng.integers(1, max_length + 1, size=n)
    gaps = rng.exponential(1.0 / rate, size=n)
    slacks = rng.uniform(0.5, 30.0, size=n)
    weights = rng.choice([0.5, 1.0, 1.0, 2.0], size=n)
    out: list[Request] = []
    now = 0.0
    for i in range(n):
        now += float(gaps[i])
        out.append(
            Request(
                request_id=i,
                length=int(lengths[i]),
                arrival=now,
                deadline=now + float(slacks[i]),
                weight=float(weights[i]),
            )
        )
    return out
