"""Assemble, render and gate ``BENCH_<n>.json``.

The JSON layout (see ``docs/performance.md``)::

    {
      "version": 8, "quick": false,
      "calibration_s": 0.041,              # fixed-work probe, see below
      "select": {"1000": {...}, "10000": {...}, "50000": {...}},
      "queue_churn": {...}, "cost_model": {...},
      "serving": {"simulator": {...}, "cluster": {...}, "continuous": {...}}
    }

Each leaf carries ``fast_s`` / ``reference_s`` / ``speedup``; serving
leaves add ``steps`` and ``steps_per_s``.

**Cross-machine gating.**  Raw steps/sec is machine-dependent, so the
CI gate does not compare it directly.  ``calibrate()`` times a fixed
pure-Python workload; work per calibration-unit
(``steps_per_s × calibration_s``) cancels single-core machine speed to
first order, and *that* ratio is what ``check_regression`` holds to the
±threshold band against the committed baseline.
"""

from __future__ import annotations

import json
import time

from repro.bench.micro import bench_cost_model, bench_queue_churn, bench_select
from repro.bench.serving import bench_serving

__all__ = [
    "BENCH_VERSION",
    "calibrate",
    "run_bench",
    "check_regression",
    "format_bench_table",
    "write_bench",
]

BENCH_VERSION = 8

_SELECT_SIZES = (1000, 10000, 50000)
_SELECT_SIZES_QUICK = (1000, 10000)


def calibrate(repeats: int = 3) -> float:
    """Seconds for a fixed pure-Python probe (machine-speed proxy)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(2_000_000):
            acc += i ^ (i >> 3)
        best = min(best, time.perf_counter() - t0)
    return best


def run_bench(*, quick: bool = False, seed: int = 0) -> dict:
    """Run the full microbenchmark suite; returns the BENCH dict."""
    sizes = _SELECT_SIZES_QUICK if quick else _SELECT_SIZES
    repeats = 2 if quick else 3
    out: dict = {
        "version": BENCH_VERSION,
        "quick": quick,
        "calibration_s": calibrate(),
        "select": {
            str(n): bench_select(n, seed, repeats=repeats) for n in sizes
        },
        "queue_churn": bench_queue_churn(
            5000 if quick else 20000, seed, repeats=repeats
        ),
        "cost_model": bench_cost_model(
            10000 if quick else 50000, seed, repeats=repeats
        ),
        "serving": bench_serving(
            horizon=6.0 if quick else 8.0,
            rate=120.0 if quick else 120.0,
            seed=seed,
            # Serving runs are milliseconds; generous best-of repeats
            # keep the CI regression gate out of scheduler-noise range.
            repeats=7 if quick else 3,
        ),
    }
    return out


def check_regression(
    current: dict, baseline: dict, *, threshold: float = 0.10
) -> list[str]:
    """Machine-normalized serving regressions beyond ``threshold``.

    Compares steps per *calibration unit* (steps/sec × probe seconds)
    per loop; returns a list of human-readable failures (empty = pass).
    """
    failures: list[str] = []
    cal_now = current.get("calibration_s")
    cal_base = baseline.get("calibration_s")
    if not cal_now or not cal_base:
        return ["baseline or current report lacks calibration_s"]
    for loop, entry in baseline.get("serving", {}).items():
        cur = current.get("serving", {}).get(loop)
        if cur is None:
            failures.append(f"serving loop {loop!r} missing from current run")
            continue
        base_norm = entry["steps_per_s"] * cal_base
        cur_norm = cur["steps_per_s"] * cal_now
        if base_norm <= 0:
            continue
        drop = 1.0 - cur_norm / base_norm
        if drop > threshold:
            failures.append(
                f"serving[{loop}] steps/cal regressed {drop:.1%} "
                f"({base_norm:.1f} -> {cur_norm:.1f}, threshold {threshold:.0%})"
            )
    return failures


def format_bench_table(report: dict) -> str:
    """Terminal summary of a BENCH dict."""
    lines = [
        f"BENCH v{report['version']}"
        + (" (quick)" if report.get("quick") else "")
        + f"  calibration={report['calibration_s'] * 1e3:.1f} ms"
    ]
    lines.append("scheduler select (fast vs reference):")
    for n, e in report["select"].items():
        lines.append(
            f"  n={int(n):>6d}  fast={e['fast_s'] * 1e3:8.2f} ms  "
            f"ref={e['reference_s'] * 1e3:8.2f} ms  {e['speedup']:5.1f}x"
        )
    qc = report["queue_churn"]
    lines.append(
        f"queue churn ({qc['ops']} ops): fast={qc['fast_s'] * 1e3:.1f} ms  "
        f"ref={qc['reference_s'] * 1e3:.1f} ms  {qc['speedup']:.1f}x"
    )
    cm = report["cost_model"]
    lines.append(
        f"cost model ({cm['evals']} evals): fast={cm['fast_s'] * 1e3:.1f} ms  "
        f"ref={cm['reference_s'] * 1e3:.1f} ms  {cm['speedup']:.1f}x"
    )
    lines.append("serving loops (steps/sec, fast core vs reference core):")
    for loop, e in report["serving"].items():
        lines.append(
            f"  {loop:<11s} {e['steps']:>5d} steps  "
            f"{e['steps_per_s']:9.1f}/s  {e['speedup']:4.2f}x vs reference"
        )
    return "\n".join(lines)


def write_bench(report: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
