"""End-to-end serving benchmark: steps/sec per loop, fast vs reference.

Also home of :func:`reference_serving_core`, the switch that swaps the
whole serving core (queue + scheduler fast paths) back to the
``_reference_*`` oracles — used both here (to measure the end-to-end
win) and by the differential equivalence harness
(``tests/test_fastpath_equivalence.py``) to prove the two cores produce
bit-identical ledgers and traces.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.scheduling.das import DASScheduler
from repro.scheduling.queue import _ReferenceRequestQueue
from repro.serving import cluster as _cluster_mod
from repro.serving import continuous as _continuous_mod
from repro.serving import simulator as _simulator_mod
from repro.serving.cluster import ClusterSimulator
from repro.serving.continuous import ContinuousBatchingSimulator
from repro.serving.simulator import ServingSimulator
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator

__all__ = ["bench_serving", "reference_serving_core"]

# Serving modules that instantiate ``RequestQueue()`` by (module-local)
# name; swapping the attribute swaps the queue class for new runs.
_QUEUE_MODULES = (_simulator_mod, _cluster_mod, _continuous_mod)


@contextmanager
def reference_serving_core() -> Iterator[None]:
    """Run serving loops on the pre-ISSUE-8 reference queue.

    Schedulers are constructed by callers, so the reference *scheduler*
    is selected separately via ``DASScheduler(..., reference=True)``;
    this context only swaps the queue class the loops instantiate.
    """
    saved = [mod.RequestQueue for mod in _QUEUE_MODULES]
    for mod in _QUEUE_MODULES:
        mod.RequestQueue = _ReferenceRequestQueue
    try:
        yield
    finally:
        for mod, cls in zip(_QUEUE_MODULES, saved):
            mod.RequestQueue = cls


def _workload(horizon: float, rate: float, seed: int):
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(
            family="normal", mean=8, spread=4, low=3, high=20
        ),
        deadlines=DeadlineModel(base_slack=4.0, jitter=0.5),
        horizon=horizon,
        seed=seed,
    ).generate()


def _run_simulator(batch, requests, horizon, *, reference):
    sim = ServingSimulator(
        DASScheduler(batch, reference=reference), ConcatEngine(batch)
    )
    return sim.run(requests, horizon=horizon).metrics


def _run_cluster(batch, requests, horizon, *, reference):
    sim = ClusterSimulator(
        DASScheduler(batch, reference=reference),
        [ConcatEngine(batch) for _ in range(3)],
    )
    return sim.run(requests, horizon=horizon).metrics


def _run_continuous(batch, requests, horizon, *, reference):
    # The continuous loop has no DAS scheduler; reference mode is the
    # queue swap alone (utility admission exercises the sorted view).
    return ContinuousBatchingSimulator(batch, admission="utility", seed=0).run(
        requests, horizon=horizon
    )


_LOOPS = {
    "simulator": _run_simulator,
    "cluster": _run_cluster,
    "continuous": _run_continuous,
}


def bench_serving(
    *,
    horizon: float = 8.0,
    rate: float = 120.0,
    seed: int = 0,
    repeats: int = 2,
) -> dict:
    """Wall-clock steps/sec per loop, fast core vs reference core.

    A "step" is one terminally-accounted request (served, expired,
    rejected or abandoned — their sum equals arrivals by the
    conservation invariant), so steps/sec is workload processed per
    wall second and is comparable across loops.
    """
    batch = BatchConfig(num_rows=4, row_length=20)
    requests = _workload(horizon, rate, seed)
    out: dict[str, dict] = {}
    for name, runner in _LOOPS.items():
        fast_s = float("inf")
        ref_s = float("inf")
        # Untimed warmup so the first timed run doesn't pay numpy /
        # import / allocator first-touch costs.
        m = runner(batch, requests, horizon, reference=False)
        steps = m.arrived
        for _ in range(repeats):
            t0 = time.perf_counter()
            runner(batch, requests, horizon, reference=False)
            fast_s = min(fast_s, time.perf_counter() - t0)
        with reference_serving_core():
            runner(batch, requests, horizon, reference=True)
            for _ in range(repeats):
                t0 = time.perf_counter()
                runner(batch, requests, horizon, reference=True)
                ref_s = min(ref_s, time.perf_counter() - t0)
        out[name] = {
            "steps": steps,
            "fast_s": fast_s,
            "reference_s": ref_s,
            "steps_per_s": steps / fast_s if fast_s > 0 else float("inf"),
            "speedup": ref_s / fast_s if fast_s > 0 else float("inf"),
        }
    return out
