"""Microbenchmark plane for the fast-path serving core (ISSUE 8).

``python -m repro bench`` runs the suite and emits ``BENCH_8.json`` —
the repo's performance trajectory, one file per PR number, so every
future change has something to compare against.  The suite measures

- scheduler select latency (fast vs ``_reference_*`` oracle) at 1k /
  10k / 50k queued requests,
- ``RequestQueue`` churn (indexed heaps vs the dict+scan reference),
- cost-model evaluation (memoized vs direct recomputation),
- end-to-end steps/sec per serving loop, fast vs reference internals.

All timings are wall clock (``time.perf_counter``) — this package is
deliberately *outside* the TCB003 sim-time-purity scope; nothing here
feeds a simulation.  All workloads are seeded through :mod:`repro.rng`
(TCB002).  See ``docs/performance.md`` for methodology and how the CI
``bench-smoke`` gate normalizes across machines.
"""

from repro.bench.micro import bench_cost_model, bench_queue_churn, bench_select
from repro.bench.report import (
    BENCH_VERSION,
    calibrate,
    check_regression,
    format_bench_table,
    run_bench,
    write_bench,
)
from repro.bench.serving import bench_serving, reference_serving_core
from repro.bench.workloads import bench_requests

__all__ = [
    "BENCH_VERSION",
    "bench_cost_model",
    "bench_queue_churn",
    "bench_requests",
    "bench_select",
    "bench_serving",
    "calibrate",
    "check_regression",
    "format_bench_table",
    "reference_serving_core",
    "run_bench",
    "write_bench",
]
