"""Stateless numeric primitives (dependency-free leaf module).

These follow the vectorised-NumPy idioms from the HPC guides: everything
broadcasts over leading batch dimensions, reductions use ``keepdims`` to
avoid reshapes, and the softmax is the numerically stable max-shifted
formulation so that additive ``-1e9`` masks underflow to exact zeros.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "relu", "gelu", "layer_norm", "linear", "log_softmax"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    Rows that are entirely masked (all entries very negative) come out as
    a uniform distribution rather than NaN; such rows only ever correspond
    to padding positions whose outputs are discarded downstream.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    denom = shifted.sum(axis=axis, keepdims=True)
    return shifted / denom


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax (used by generation scoring)."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximation GELU (as in BERT/GPT implementations)."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + np.tanh(0.7978845608028654 * (x + 0.044715 * x**3)))


def layer_norm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """LayerNorm over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * gamma + beta


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """``x @ weight + bias`` with weight of shape ``(in, out)``."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out
