"""One harness per table/figure of the paper's evaluation (§6.2).

Each ``figXX`` module exposes a ``run_*`` function that regenerates the
corresponding figure's series (same x-axis points, same systems) and
returns plain dicts, so the benchmark suite, the examples and
EXPERIMENTS.md all share a single implementation.

Figure index (see DESIGN.md for the full mapping):

- :func:`run_fig09_utility`  / :func:`run_fig10_throughput` — DAS-fed
  utility / throughput vs arrival rate,
- :func:`run_fig11_fig12_fcfs` — FCFS throughput vs rate at σ=20 / σ=100,
- :func:`run_fig13_fig14_slot_speedup` — slotted speedup vs #slots,
- :func:`run_fig15a_batch_size` / :func:`run_fig15b_variance` /
  :func:`run_fig15c_row_length` — scheduler comparison sweeps,
- :func:`run_fig16_overhead` — DAS runtime / batch time ratio.
"""

from repro.experiments.serving_sweeps import (
    run_fig09_utility,
    run_fig10_throughput,
    run_fig11_fig12_fcfs,
    serving_point,
)
from repro.experiments.slot_speedup import run_fig13_fig14_slot_speedup
from repro.experiments.scheduler_comparison import (
    run_fig15a_batch_size,
    run_fig15b_variance,
    run_fig15c_row_length,
)
from repro.experiments.overhead import run_fig16_overhead
from repro.experiments.fault_tolerance import run_fault_tolerance
from repro.experiments.overload import run_overload
from repro.experiments.tables import format_series_table

__all__ = [
    "serving_point",
    "run_fault_tolerance",
    "run_overload",
    "run_fig09_utility",
    "run_fig10_throughput",
    "run_fig11_fig12_fcfs",
    "run_fig13_fig14_slot_speedup",
    "run_fig15a_batch_size",
    "run_fig15b_variance",
    "run_fig15c_row_length",
    "run_fig16_overhead",
    "format_series_table",
]
