"""Chaos sweep: serving quality vs injected fault rate.

Not a paper figure — the paper assumes a healthy engine — but the
natural robustness question for its system: how does deadline-aware
serving degrade when slots fail, straggle, OOM or crash?  The sweep
drives the single-engine serving loop through a
:class:`~repro.faults.plan.FaultPlan` at increasing chaos rates and
reports seed-averaged utility plus the fault-accounting counters, for
DAS and FCFS side by side.

Every run is replayable: fault plans are seeded per (rate, seed) cell,
and the conservation invariant is asserted inside the serving loop, so
a run that loses requests fails loudly instead of skewing a curve.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.engine.cost_model import GPUCostModel
from repro.experiments.serving_sweeps import make_scheduler, make_workload
from repro.faults import FaultConfig, FaultPlan, FaultyEngine
from repro.serving.metrics import ServingMetrics
from repro.serving.simulator import ServingSimulator

__all__ = ["FAULT_RATES", "fault_point", "run_fault_tolerance"]

# Chaos knob: total per-slot fault probability (0 = healthy baseline).
FAULT_RATES = (0.0, 0.05, 0.15, 0.3)


def fault_point(
    policy: str,
    fault_rate: float,
    *,
    rate: float = 150.0,
    batch: Optional[BatchConfig] = None,
    horizon: float = 8.0,
    seed: int = 0,
    downtime: float = 0.3,
    cost_model: Optional[GPUCostModel] = None,
) -> ServingMetrics:
    """One (policy, fault_rate, seed) serving run under chaos."""
    if batch is None:
        batch = BatchConfig(num_rows=16, row_length=100)
    engine = ConcatEngine(batch, cost_model=cost_model or GPUCostModel.calibrated())
    plan = FaultPlan(
        FaultConfig.chaos(fault_rate, downtime=downtime), seed=1000 + seed
    )
    sim = ServingSimulator(
        make_scheduler(policy, batch), FaultyEngine(engine, plan)
    )
    return sim.run(make_workload(rate, horizon=horizon, seed=seed)).metrics


def run_fault_tolerance(
    fault_rates: Sequence[float] = FAULT_RATES,
    *,
    rate: float = 150.0,
    horizon: float = 8.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> dict[str, list[float]]:
    """Chaos sweep over ``fault_rates`` for DAS and FCFS.

    Utility/served are seed means; the fault counters (retries, failed
    batches, abandoned, downtime) are seed means as well, so columns
    stay comparable when the seed set changes.
    """
    out: dict[str, list[float]] = {"fault_rate": list(fault_rates)}
    for policy in ("das", "fcfs"):
        key = policy.upper()
        cols: dict[str, list[float]] = {
            "utility": [],
            "served": [],
            "abandoned": [],
            "retries": [],
            "failed": [],
            "downtime": [],
        }
        for fr in fault_rates:
            acc = {k: 0.0 for k in cols}
            for seed in seeds:
                m = fault_point(
                    policy, fr, rate=rate, horizon=horizon, seed=seed
                )
                acc["utility"] += m.total_utility
                acc["served"] += m.num_served
                acc["abandoned"] += m.num_abandoned
                acc["retries"] += m.retries
                acc["failed"] += m.failed_batches
                acc["downtime"] += m.downtime
            for k in cols:
                cols[k].append(acc[k] / len(seeds))
        for k, series in cols.items():
            out[f"{key}_{k}"] = series
    return out
