"""Ablation studies for TCB's design choices (beyond the paper's figures).

DESIGN.md calls out the knobs worth isolating; each function here
quantifies one of them:

- :func:`packing_policy_ablation` — Algorithm 1 packs rows in selection
  order; how much padding does first-fit / best-fit-decreasing recover?
- :func:`slot_policy_ablation` — Algorithm 2 derives the slot size from
  the utility-dominant set; compare against fixed slot counts.
- :func:`eta_q_ablation` — the η/q trade-off of Theorem 5.1 vs realised
  utility.
- :func:`early_cleaning_ablation` — byte-step savings of §4.2.2's early
  memory cleaning as slot count varies.
- :func:`concat_aware_ablation` — how much of DAS's edge over classic
  schedulers comes purely from concat-*awareness* (row filling).
- :func:`incremental_decode_ablation` — measured wall-clock of KV-cached
  vs full-recompute decoding on the real NumPy model.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.config import BatchConfig, ModelConfig, SchedulerConfig
from repro.core.packing import (
    pack_best_fit_decreasing,
    pack_first_fit,
    pack_in_order,
)
from repro.core.slotting import pack_into_slots, slot_size_fixed_count
from repro.engine.concat import ConcatEngine
from repro.engine.cost_model import GPUCostModel
from repro.engine.memory import GPUMemorySimulator
from repro.engine.slotted import SlottedConcatEngine
from repro.model.incremental import greedy_decode_incremental
from repro.model.seq2seq import Seq2SeqModel
from repro.scheduling.baselines import SJFScheduler
from repro.scheduling.das import DASScheduler
from repro.scheduling.slotted_das import SlottedDASScheduler
from repro.serving.simulator import ServingSimulator
from repro.types import Request
from repro.experiments.serving_sweeps import make_workload

__all__ = [
    "packing_policy_ablation",
    "slot_policy_ablation",
    "eta_q_ablation",
    "early_cleaning_ablation",
    "concat_aware_ablation",
    "incremental_decode_ablation",
]


def packing_policy_ablation(
    *,
    num_rows: int = 16,
    row_length: int = 100,
    num_requests: int = 120,
    seeds: Sequence[int] = (0, 1, 2),
) -> dict[str, list[float]]:
    """Padding ratio and rejection rate of the three packing policies."""
    policies = {
        "in_order": pack_in_order,
        "first_fit": pack_first_fit,
        "best_fit_decreasing": pack_best_fit_decreasing,
    }
    out: dict[str, list[float]] = {
        "policy": list(policies),
        "padding_pct": [],
        "rejected_pct": [],
    }
    for name, packer in policies.items():
        pad, rej = [], []
        for seed in seeds:
            rng = np.random.default_rng(seed)
            lengths = np.clip(
                np.rint(rng.normal(20, 20, size=num_requests)), 3, 100
            ).astype(int)
            reqs = [
                Request(request_id=i, length=int(l))
                for i, l in enumerate(lengths)
            ]
            res = packer(reqs, num_rows, row_length)
            pad.append(100 * res.layout.padding_ratio)
            rej.append(100 * res.num_rejected / num_requests)
        out["padding_pct"].append(float(np.mean(pad)))
        out["rejected_pct"].append(float(np.mean(rej)))
    return out


def slot_policy_ablation(
    *,
    rate: float = 1000.0,
    horizon: float = 8.0,
    seeds: Sequence[int] = (0, 1),
    fixed_counts: Sequence[int] = (1, 2, 4, 8),
) -> dict[str, list]:
    """Serving utility: Algorithm 2's adaptive slot size vs fixed counts."""
    batch = BatchConfig(num_rows=16, row_length=100)
    labels: list[str] = []
    utilities: list[float] = []

    def run(scheduler, engine) -> float:
        total = 0.0
        for seed in seeds:
            sim = ServingSimulator(scheduler, engine)
            m = sim.run(make_workload(rate, horizon=horizon, seed=seed)).metrics
            total += m.total_utility
        return total / len(seeds)

    labels.append("adaptive (Alg. 2)")
    utilities.append(
        run(
            SlottedDASScheduler(batch, SchedulerConfig()),
            SlottedConcatEngine(batch),
        )
    )
    for n in fixed_counts:
        labels.append(f"fixed n={n}")
        utilities.append(
            run(DASScheduler(batch, SchedulerConfig()), SlottedConcatEngine(batch, num_slots=n))
        )
    return {"policy": labels, "utility": utilities}


def eta_q_ablation(
    etas: Sequence[float] = (0.2, 0.35, 0.5, 0.65, 0.8),
    *,
    rate: float = 800.0,
    horizon: float = 8.0,
    seeds: Sequence[int] = (0, 1),
) -> dict[str, list[float]]:
    """Utility and theoretical bound across η (with q = 1 − η)."""
    batch = BatchConfig(num_rows=16, row_length=100)
    out: dict[str, list[float]] = {"eta": list(etas), "utility": [], "bound": []}
    for eta in etas:
        cfg = SchedulerConfig(eta=eta, q=round(1.0 - eta, 6))
        total = 0.0
        for seed in seeds:
            sim = ServingSimulator(DASScheduler(batch, cfg), ConcatEngine(batch))
            m = sim.run(make_workload(rate, horizon=horizon, seed=seed)).metrics
            total += m.total_utility
        out["utility"].append(total / len(seeds))
        out["bound"].append(cfg.competitive_ratio)
    return out


def early_cleaning_ablation(
    slot_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    num_rows: int = 8,
    row_length: int = 64,
    seed: int = 0,
) -> dict[str, list[float]]:
    """Byte-step savings from early cleaning as slot count varies.

    Completion steps are sampled from a geometric-ish profile (outputs of
    different requests end at different decode steps — §4.2.2's
    observation); pure ConcatBatching (1 slot) saves nothing.
    """
    rng = np.random.default_rng(seed)
    mem = GPUMemorySimulator(d_model=64, num_layers=6)
    out: dict[str, list[float]] = {
        "slots": list(slot_counts),
        "savings_pct": [],
        "overlap_kb": [],
    }
    # The same concatenated workload throughout (8-token requests); only
    # the slot granularity changes.  Coarser slots free later because a
    # slot waits for the *last* of its requests.
    req_len = row_length // max(slot_counts)
    lengths = [req_len] * (row_length // req_len) * num_rows
    for n in slot_counts:
        z = slot_size_fixed_count(n, row_length)
        reqs = [Request(request_id=i, length=l) for i, l in enumerate(lengths)]
        res = pack_into_slots(reqs, num_rows, row_length, z)
        completion = {
            r.request_id: int(rng.integers(1, 17)) for r in res.packed
        }
        report = mem.simulate(res.layout, completion, early_cleaning=True)
        out["savings_pct"].append(100 * report.savings_ratio)
        out["overlap_kb"].append(report.overlap_bytes / 1024)
    return out


def concat_aware_ablation(
    *,
    rate: float = 1000.0,
    horizon: float = 8.0,
    seeds: Sequence[int] = (0, 1),
) -> dict[str, list]:
    """Decompose DAS's advantage: ordering policy vs concat-awareness."""
    batch = BatchConfig(num_rows=16, row_length=100)
    settings = {
        "DAS (concat-aware)": DASScheduler(batch, SchedulerConfig()),
        "SJF concat-aware": SJFScheduler(batch, concat_aware=True),
        "SJF classic": SJFScheduler(batch, concat_aware=False),
    }
    out: dict[str, list] = {"scheduler": list(settings), "utility": []}
    for sched in settings.values():
        total = 0.0
        for seed in seeds:
            sim = ServingSimulator(sched, ConcatEngine(batch))
            m = sim.run(make_workload(rate, horizon=horizon, seed=seed)).metrics
            total += m.total_utility
        out["utility"].append(total / len(seeds))
    return out


def das_components_ablation(
    *,
    rate: float = 300.0,
    horizon: float = 8.0,
    seeds: Sequence[int] = (0, 1),
    base_slack: float = 0.8,
    jitter: float = 1.5,
) -> dict[str, list]:
    """Decompose DAS: utility part vs deadline part (§5.2's motivation).

    Compares, on a deadline-tight workload, concat-aware variants that
    use only one of DAS's two ingredients:

    - ``utility-only`` — pure utility ordering (SJF with row filling;
      what DAS's N^U alone would do),
    - ``deadline-only`` — pure EDF ordering (DEF with row filling; N^D
      alone),
    - ``DAS`` — the full mix.

    Reported per policy: total utility and deadline-miss rate.  DAS is
    expected to track utility-only's utility while cutting misses toward
    deadline-only's level.
    """
    batch = BatchConfig(num_rows=16, row_length=100)
    from repro.scheduling.baselines import DEFScheduler
    from repro.workload.deadlines import DeadlineModel
    from repro.workload.generator import LengthDistribution, WorkloadGenerator

    def wl(seed: int) -> WorkloadGenerator:
        return WorkloadGenerator(
            rate=rate,
            lengths=LengthDistribution(
                family="normal", mean=20, spread=20, low=3, high=100
            ),
            deadlines=DeadlineModel(base_slack=base_slack, jitter=jitter),
            horizon=horizon,
            seed=seed,
        )

    policies = {
        "utility-only": lambda: SJFScheduler(batch, concat_aware=True),
        "deadline-only": lambda: DEFScheduler(batch, concat_aware=True),
        "DAS": lambda: DASScheduler(batch, SchedulerConfig()),
    }
    out: dict[str, list] = {"policy": list(policies), "utility": [], "miss_pct": []}
    for mk in policies.values():
        util, miss = 0.0, 0.0
        for seed in seeds:
            sim = ServingSimulator(mk(), ConcatEngine(batch))
            m = sim.run(wl(seed)).metrics
            util += m.total_utility
            miss += 100 * m.miss_rate
        out["utility"].append(util / len(seeds))
        out["miss_pct"].append(miss / len(seeds))
    return out


def incremental_decode_ablation(
    decode_lengths: Sequence[int] = (4, 8, 16),
    *,
    seed: int = 0,
) -> dict[str, list[float]]:
    """Measured decode wall-time: full recompute vs KV-cached (real model)."""
    cfg = ModelConfig.tiny()
    model = Seq2SeqModel(cfg, seed=seed)
    rng = np.random.default_rng(seed)
    reqs = [
        Request(
            request_id=i,
            length=6,
            tokens=tuple(int(t) for t in rng.integers(4, cfg.vocab_size, size=6)),
        )
        for i in range(8)
    ]
    layout = pack_first_fit(reqs, num_rows=2, row_length=24).layout
    out: dict[str, list[float]] = {
        "max_new_tokens": list(decode_lengths),
        "recompute_ms": [],
        "kv_cached_ms": [],
        "speedup": [],
    }
    for t in decode_lengths:
        t0 = time.perf_counter()
        full = model.greedy_decode(layout, max_new_tokens=t)
        t_full = time.perf_counter() - t0
        t0 = time.perf_counter()
        inc = greedy_decode_incremental(model, layout, max_new_tokens=t)
        t_inc = time.perf_counter() - t0
        if full.outputs != inc.outputs:
            raise RuntimeError("incremental decode diverged from recompute")
        out["recompute_ms"].append(1e3 * t_full)
        out["kv_cached_ms"].append(1e3 * t_inc)
        out["speedup"].append(t_full / t_inc if t_inc > 0 else float("inf"))
    return out
