"""Traced serving runs: canonical configs for ``python -m repro trace``.

Each entry wires a paper experiment (or an extension scenario) through a
:class:`~repro.obs.recorder.Tracer` so its full request lifecycle can be
exported as a Chrome trace, a span CSV, or an ASCII timeline.  The runs
are deliberately small — tracing is a debugging/inspection tool, not a
measurement harness — and every run ends with
:meth:`~repro.obs.recorder.Tracer.reconcile` against its
:class:`~repro.serving.metrics.ServingMetrics`, so an exported trace is
guaranteed to agree with the conservation ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BatchConfig, SchedulerConfig
from repro.engine.concat import ConcatEngine
from repro.engine.slotted import SlottedConcatEngine
from repro.faults.engine import FaultyEngine
from repro.faults.plan import FaultConfig, FaultPlan
from repro.obs.recorder import Tracer
from repro.scheduling.das import DASScheduler
from repro.scheduling.slotted_das import SlottedDASScheduler
from repro.serving.cluster import ClusterSimulator
from repro.serving.continuous import ContinuousBatchingSimulator
from repro.serving.metrics import ServingMetrics
from repro.serving.simulator import ServingSimulator
from repro.experiments.serving_sweeps import make_workload

__all__ = ["TracedRun", "available_traces", "run_traced"]


@dataclass
class TracedRun:
    """A finished traced serving run, ready for export."""

    name: str
    description: str
    tracer: Tracer
    metrics: ServingMetrics


def _run_fig9(fast: bool) -> tuple[Tracer, ServingMetrics]:
    """Fig. 9 serving point: DAS + ConcatBatching at a mid arrival rate."""
    batch = BatchConfig(num_rows=64, row_length=100)
    tracer = Tracer()
    sim = ServingSimulator(
        DASScheduler(batch, SchedulerConfig()),
        ConcatEngine(batch),
        trace=tracer,
    )
    horizon = 2.0 if fast else 10.0
    result = sim.run(make_workload(200.0, horizon=horizon, seed=0))
    return tracer, result.metrics


def _run_fig13(fast: bool) -> tuple[Tracer, ServingMetrics]:
    """Fig. 13 setting served online: Slotted DAS + slotted engine."""
    batch = BatchConfig(num_rows=10, row_length=400)
    tracer = Tracer()
    sim = ServingSimulator(
        SlottedDASScheduler(batch, SchedulerConfig()),
        SlottedConcatEngine(batch),
        trace=tracer,
    )
    horizon = 2.0 if fast else 8.0
    result = sim.run(make_workload(150.0, horizon=horizon, seed=0))
    return tracer, result.metrics


def _run_cluster(fast: bool) -> tuple[Tracer, ServingMetrics]:
    """Multi-engine extension: two engines sharing one DAS queue."""
    batch = BatchConfig(num_rows=16, row_length=100)
    tracer = Tracer()
    sim = ClusterSimulator(
        DASScheduler(batch, SchedulerConfig()),
        [ConcatEngine(batch) for _ in range(2)],
        trace=tracer,
    )
    horizon = 2.0 if fast else 8.0
    result = sim.run(make_workload(250.0, horizon=horizon, seed=0))
    return tracer, result.metrics


def _run_continuous(fast: bool) -> tuple[Tracer, ServingMetrics]:
    """Iteration-level (ORCA-style) comparison loop."""
    batch = BatchConfig(num_rows=16, row_length=100)
    tracer = Tracer()
    sim = ContinuousBatchingSimulator(batch, seed=0, trace=tracer)
    horizon = 2.0 if fast else 8.0
    metrics = sim.run(make_workload(150.0, horizon=horizon, seed=0))
    return tracer, metrics


def _run_faults(fast: bool) -> tuple[Tracer, ServingMetrics]:
    """Chaos run: DAS + ConcatBatching behind a fault-injecting engine."""
    batch = BatchConfig(num_rows=16, row_length=100)
    plan = FaultPlan(FaultConfig.chaos(0.15, downtime=0.3), seed=1000)
    tracer = Tracer()
    sim = ServingSimulator(
        DASScheduler(batch, SchedulerConfig()),
        FaultyEngine(ConcatEngine(batch), plan),
        trace=tracer,
    )
    horizon = 2.0 if fast else 8.0
    result = sim.run(make_workload(150.0, horizon=horizon, seed=0))
    return tracer, result.metrics


_TRACED = {
    "fig9": ("DAS + ConcatBatching serving point (Fig. 9 setup)", _run_fig9),
    "fig13": ("Slotted DAS + slotted engine, B=10 L=400 (Fig. 13 setup)", _run_fig13),
    "cluster": ("two-engine cluster sharing a DAS queue", _run_cluster),
    "continuous": ("iteration-level (ORCA-style) batching loop", _run_continuous),
    "faults": ("DAS + ConcatBatching under 15% chaos faults", _run_faults),
}


def available_traces() -> list[str]:
    return list(_TRACED)


def run_traced(name: str, *, fast: bool = False) -> TracedRun:
    """Run one traced config end-to-end (tracer already reconciled)."""
    try:
        description, runner = _TRACED[name]
    except KeyError:
        raise ValueError(
            f"unknown traced experiment {name!r}; "
            f"expected one of {available_traces()}"
        )
    tracer, metrics = runner(fast)
    return TracedRun(
        name=name, description=description, tracer=tracer, metrics=metrics
    )
