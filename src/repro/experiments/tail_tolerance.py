"""Tail-tolerance sweep + smoke: hedged dispatch vs a straggling replica.

Not a paper figure — the paper's engines never misbehave — but the
tail-tolerance plane (``docs/tail_tolerance.md``) makes a quantitative
claim worth measuring: against a straggler-heavy replica, hedged
dispatch should cut the cluster's p99 batch latency by a large constant
factor at equal offered load, while the exactly-once ledger stays
conservation-exact (hedging must never create or lose a request).

``tail_smoke`` is the CI-scale check (``make tail-smoke``): a straggler
chaos sweep over a seed matrix asserting the hedged p99 beats the
no-hedging baseline by at least a fixed margin, writing the sweep as a
JSON artifact either way so CI can upload it.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Optional, Sequence

from repro.cluster_health import (
    HealthConfig,
    HedgeConfig,
    TailToleranceConfig,
    TailTolerancePlane,
)
from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.experiments.serving_sweeps import make_scheduler, make_workload
from repro.faults import FaultConfig, FaultPlan, FaultyEngine
from repro.obs.recorder import Tracer
from repro.serving.cluster import ClusterSimulator
from repro.types import Request

__all__ = ["run_tail", "tail_point", "tail_smoke"]

_BATCH = BatchConfig(num_rows=4, row_length=20)

# The smoke's acceptance margin: hedged p99 must undercut the
# no-hedging baseline by at least this fraction.
SMOKE_MARGIN = 0.25


def _requests(seed: int, *, rate: float, horizon: float) -> list[Request]:
    return make_workload(rate, horizon=horizon, seed=seed).generate()


def _engines(seed: int, *, multiplier: tuple[float, float], n: int = 3):
    """``n`` engines sharing the queue; engine 0 is the gray-failing
    replica (stragglers, no outright failures), the rest run clean."""
    out = []
    for i in range(n):
        cfg = (
            FaultConfig(straggler_rate=0.9, straggler_multiplier=multiplier)
            if i == 0
            else FaultConfig()
        )
        out.append(
            FaultyEngine(ConcatEngine(_BATCH), FaultPlan(cfg, seed=seed * 10 + i))
        )
    return out


def _plane(*, hedge: bool) -> TailTolerancePlane:
    """Detection + placement always on; ``hedge`` isolates the hedged
    dispatch so the sweep measures its marginal effect."""
    return TailTolerancePlane(
        TailToleranceConfig(
            health=HealthConfig(window=8, min_window=2),
            hedge=(
                HedgeConfig(
                    quantile=0.9,
                    multiplier=1.5,
                    min_observations=4,
                    only_suspect=False,
                )
                if hedge
                else None
            ),
        )
    )


def _p99(tr: Tracer) -> float:
    durs = sorted(b.duration for b in tr.batches if b.kind == "batch")
    if not durs:
        return 0.0
    rank = max(1, math.ceil(0.99 * len(durs)))
    return durs[rank - 1]


def tail_point(
    seed: int,
    *,
    rate: float = 40.0,
    horizon: float = 30.0,
    multiplier: tuple[float, float] = (4.0, 8.0),
) -> dict:
    """One hedging-on/off differential cell at equal load.

    Both runs share the workload and the straggler plan; the baseline
    keeps gray-failure detection and health-scored placement so the
    reported improvement isolates hedged dispatch itself.
    """
    requests = _requests(seed, rate=rate, horizon=horizon)
    cell: dict = {"seed": seed, "rate": rate, "multiplier": list(multiplier)}
    for label, hedge in (("baseline", False), ("hedged", True)):
        tr = Tracer()
        sim = ClusterSimulator(
            make_scheduler("das", _BATCH),
            _engines(seed, multiplier=multiplier),
            trace=tr,
            health=_plane(hedge=hedge),
        )
        m = sim.run(requests, horizon=horizon).metrics
        # Hedging must never bend the ledger: conservation and the
        # span-vs-metrics reconcile are part of every cell.
        m.assert_conservation()
        tr.reconcile(m)
        cell[label] = {
            "p99": _p99(tr),
            "served": len(m.served),
            "hedges": m.hedges,
            "hedge_wins": m.hedge_wins,
            "hedge_wasted": m.hedge_wasted,
        }
    base, hedged = cell["baseline"]["p99"], cell["hedged"]["p99"]
    cell["improvement"] = 0.0 if base <= 0 else 1.0 - hedged / base
    return cell


def run_tail(
    multipliers: Sequence[tuple[float, float]] = (
        (2.0, 4.0),
        (4.0, 8.0),
        (8.0, 16.0),
    ),
    *,
    rate: float = 40.0,
    horizon: float = 30.0,
    seeds: Sequence[int] = (0, 1),
) -> dict[str, list[float]]:
    """Straggler-severity sweep (``python -m repro ablation tail``).

    Seed-averaged per multiplier range: baseline vs hedged p99 batch
    latency, the relative improvement, and how many hedges fired/won.
    """
    out: dict[str, list[float]] = {
        "straggler_multiplier_lo": [m[0] for m in multipliers]
    }
    cols = ("p99_baseline", "p99_hedged", "improvement", "hedges", "hedge_wins")
    acc: dict[str, list[float]] = {c: [] for c in cols}
    for mult in multipliers:
        sums = {c: 0.0 for c in cols}
        for seed in seeds:
            cell = tail_point(
                seed, rate=rate, horizon=horizon, multiplier=mult
            )
            sums["p99_baseline"] += cell["baseline"]["p99"]
            sums["p99_hedged"] += cell["hedged"]["p99"]
            sums["improvement"] += cell["improvement"]
            sums["hedges"] += cell["hedged"]["hedges"]
            sums["hedge_wins"] += cell["hedged"]["hedge_wins"]
        for c in cols:
            acc[c].append(sums[c] / len(seeds))
    out.update(acc)
    return out


def tail_smoke(
    *,
    seeds: Sequence[int] = (0, 1, 2),
    rate: float = 40.0,
    horizon: float = 30.0,
    multiplier: tuple[float, float] = (4.0, 8.0),
    margin: float = SMOKE_MARGIN,
    artifact_dir: str = "benchmarks/results/tail_smoke",
    artifact: Optional[str] = "sweep.json",
) -> None:
    """CI chaos smoke: hedging must beat no-hedging p99 by ``margin``.

    Prints one line per seed, writes the full sweep JSON into
    *artifact_dir* (always — the artifact is the record, not just the
    failure dump), and raises ``SystemExit(1)`` if any seed's
    improvement falls below the margin or an invariant check fails.
    """
    cells = []
    failures = []
    for seed in seeds:
        cell = tail_point(
            seed, rate=rate, horizon=horizon, multiplier=multiplier
        )
        cells.append(cell)
        ok = cell["improvement"] >= margin
        print(
            f"tail smoke: seed={seed} "
            f"p99 {cell['baseline']['p99']:.3f} -> {cell['hedged']['p99']:.3f} "
            f"({cell['improvement']:.0%} better, margin {margin:.0%}) "
            f"hedges={cell['hedged']['hedges']} "
            f"wins={cell['hedged']['hedge_wins']} "
            f"{'OK' if ok else 'BELOW MARGIN'}"
        )
        if not ok:
            failures.append(seed)
    if artifact is not None:
        art = Path(artifact_dir)
        art.mkdir(parents=True, exist_ok=True)
        (art / artifact).write_text(
            json.dumps(
                {
                    "margin": margin,
                    "rate": rate,
                    "horizon": horizon,
                    "multiplier": list(multiplier),
                    "cells": cells,
                    "failures": failures,
                },
                indent=2,
            )
        )
    if failures:
        raise SystemExit(
            f"tail smoke: seed(s) {failures} below the {margin:.0%} "
            f"p99-improvement margin; sweep written to {artifact_dir}/"
        )
    print(
        f"tail smoke: {len(seeds)} seeds, hedged dispatch beat the "
        f"no-hedging baseline by >= {margin:.0%} p99 in every cell"
    )
