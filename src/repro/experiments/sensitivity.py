"""Sensitivity analysis: are the headline results robust to the cost model?

The serving figures run on a calibrated analytic GPU model (DESIGN.md's
substitution).  A fair question is whether the paper-level *conclusions*
— TCB beats TNB/TTB at saturation; slotting speeds up large batches and
plateaus — survive if the calibration is wrong.  This module perturbs
each cost constant by a factor (default ×½ and ×2, i.e. ±100 % error)
and recomputes the headline metrics:

- ``fig10_gap`` — saturated TCB/TNB throughput ratio under DAS,
- ``tcb_wins_fcfs`` — whether TCB strictly beats both TNB and TTB under
  FCFS (the TTB-vs-TNB margin is a few percent and flips under some
  perturbations, so the robust claim is about TCB),
- ``fig14_speedup`` — slotted speedup at 7 slots, batch 32,
- ``fig14_plateau`` — speedup(20) − speedup(7) (should stay small).

The bench asserts the *qualitative* conclusions hold for every
perturbation, which is the strongest robustness statement a simulation
substitution can make.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.engine.cost_model import GPUCostModel
from repro.experiments.serving_sweeps import serving_point
from repro.experiments.slot_speedup import slotted_batch_time

__all__ = ["PERTURBABLE", "headline_metrics", "sensitivity_sweep"]

PERTURBABLE = (
    "fixed_per_batch",
    "per_token",
    "attn_rate",
    "attn_floor",
    "per_slot",
    "decode_factor",
)


def headline_metrics(
    cm: GPUCostModel,
    *,
    rate: float = 450.0,
    horizon: float = 8.0,
    seeds: Sequence[int] = (0,),
) -> dict[str, float]:
    """The four headline quantities under one cost model."""
    tcb = serving_point("TCB", "das", rate, horizon=horizon, seeds=seeds, cost_model=cm)
    tnb = serving_point("TNB", "das", rate, horizon=horizon, seeds=seeds, cost_model=cm)
    f_tcb = serving_point("TCB", "fcfs", rate, horizon=horizon, seeds=seeds, cost_model=cm)
    f_ttb = serving_point("TTB", "fcfs", rate, horizon=horizon, seeds=seeds, cost_model=cm)
    f_tnb = serving_point("TNB", "fcfs", rate, horizon=horizon, seeds=seeds, cost_model=cm)

    t1 = slotted_batch_time(32, 400, 1, cm)
    t7 = slotted_batch_time(32, 400, 7, cm)
    t20 = slotted_batch_time(32, 400, 20, cm)
    return {
        "fig10_gap": tcb.throughput / max(tnb.throughput, 1e-9),
        "tcb_wins_fcfs": float(
            f_tcb.throughput > f_ttb.throughput
            and f_tcb.throughput > f_tnb.throughput
        ),
        "fig14_speedup": t1 / t7,
        "fig14_plateau": t1 / t20 - t1 / t7,
    }


def sensitivity_sweep(
    factors: Sequence[float] = (0.5, 2.0),
    constants: Optional[Sequence[str]] = None,
    **kwargs,
) -> dict[str, list]:
    """Perturb each constant by each factor; collect headline metrics."""
    base = GPUCostModel.calibrated()
    names = list(constants) if constants is not None else list(PERTURBABLE)
    for name in names:
        if name not in PERTURBABLE:
            raise ValueError(f"unknown cost constant {name!r}")
    out: dict[str, list] = {
        "perturbation": [],
        "fig10_gap": [],
        "tcb_wins_fcfs": [],
        "fig14_speedup": [],
        "fig14_plateau": [],
    }

    def record(label: str, cm: GPUCostModel) -> None:
        metrics = headline_metrics(cm, **kwargs)
        out["perturbation"].append(label)
        for k, v in metrics.items():
            out[k].append(v)

    record("baseline", base)
    for name in names:
        for factor in factors:
            cm = base.with_(**{name: getattr(base, name) * factor})
            record(f"{name} ×{factor:g}", cm)
    return out
