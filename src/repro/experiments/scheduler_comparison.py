"""Fig. 15: DAS vs SJF/FCFS/DEF on the TCB engine.

All four policies drive the *same* ConcatBatching engine (§6.2.4 —
"we use the same TCB inference engine for all algorithms"); the sweeps
vary (a) batch size {5, 10, 16}, (b) length spread {10, 50, 100} at
batch 16, and (c) batch row length {100, 200, 300}.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import BatchConfig, SchedulerConfig
from repro.engine.base import InferenceEngine
from repro.engine.concat import ConcatEngine
from repro.engine.cost_model import GPUCostModel
from repro.engine.slotted import SlottedConcatEngine
from repro.scheduling.base import Scheduler
from repro.scheduling.baselines import DEFScheduler, FCFSScheduler, SJFScheduler
from repro.scheduling.das import DASScheduler
from repro.scheduling.slotted_das import SlottedDASScheduler
from repro.serving.simulator import ServingSimulator
from repro.experiments.serving_sweeps import make_workload

__all__ = [
    "POLICIES",
    "scheduler_utility",
    "run_fig15a_batch_size",
    "run_fig15b_variance",
    "run_fig15c_row_length",
]

POLICIES = ("DAS", "SJF", "FCFS", "DEF")


def _make_policy(name: str, batch: BatchConfig) -> tuple[Scheduler, InferenceEngine]:
    # The full TCB stack is Slotted_DAS driving the slotted engine.  The
    # off-the-shelf baselines are *not* aware of ConcatBatching: they
    # select one request per batch row, the classic batching notion — being
    # concat-aware is precisely DAS's contribution (§1, §5) — and carry no
    # slot-size logic, so they run the pure ConcatBatching engine.
    cm = GPUCostModel.calibrated()
    if name == "DAS":
        return (
            SlottedDASScheduler(batch, SchedulerConfig()),
            SlottedConcatEngine(batch, cost_model=cm),
        )
    if name == "SJF":
        return SJFScheduler(batch, concat_aware=False), ConcatEngine(batch, cost_model=cm)
    if name == "FCFS":
        return FCFSScheduler(batch, concat_aware=False), ConcatEngine(batch, cost_model=cm)
    if name == "DEF":
        return DEFScheduler(batch, concat_aware=False), ConcatEngine(batch, cost_model=cm)
    raise ValueError(f"unknown policy {name!r}")


def scheduler_utility(
    policy: str,
    batch: BatchConfig,
    *,
    rate: float = 1000.0,
    spread: float = 20.0,
    horizon: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
    cost_model: Optional[GPUCostModel] = None,
) -> float:
    """Seed-averaged total utility of (policy)-TCB on the §6.2.1 workload."""
    total = 0.0
    for seed in seeds:
        scheduler, engine = _make_policy(policy, batch)
        if cost_model is not None:
            engine.cost_model = cost_model
        sim = ServingSimulator(scheduler, engine)
        m = sim.run(
            make_workload(rate, spread=spread, horizon=horizon, seed=seed)
        ).metrics
        total += m.total_utility
    return total / len(seeds)


def _sweep(
    batches: Sequence[BatchConfig],
    labels: Sequence[float],
    label_name: str,
    *,
    spread: float = 20.0,
    rate: float = 1000.0,
    horizon: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
    spreads: Optional[Sequence[float]] = None,
) -> dict[str, list[float]]:
    out: dict[str, list[float]] = {label_name: list(labels)}
    for policy in POLICIES:
        series = []
        for i, batch in enumerate(batches):
            s = spreads[i] if spreads is not None else spread
            series.append(
                scheduler_utility(
                    policy, batch, rate=rate, spread=s, horizon=horizon, seeds=seeds
                )
            )
        out[f"{policy}-TCB"] = series
    return out


def run_fig15a_batch_size(
    batch_sizes: Sequence[int] = (5, 10, 16),
    *,
    row_length: int = 100,
    rate: float = 1000.0,
    horizon: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> dict[str, list[float]]:
    """Fig. 15(a): utility vs batch size (number of rows)."""
    batches = [BatchConfig(num_rows=b, row_length=row_length) for b in batch_sizes]
    return _sweep(batches, list(batch_sizes), "batch_size", rate=rate, horizon=horizon, seeds=seeds)


def run_fig15b_variance(
    spreads: Sequence[float] = (10, 50, 100),
    *,
    batch_size: int = 16,
    row_length: int = 100,
    rate: float = 1000.0,
    horizon: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> dict[str, list[float]]:
    """Fig. 15(b): utility vs request-length spread at batch size 16."""
    batches = [BatchConfig(num_rows=batch_size, row_length=row_length)] * len(spreads)
    return _sweep(
        batches, list(spreads), "spread", rate=rate, horizon=horizon, seeds=seeds,
        spreads=list(spreads),
    )


def run_fig15c_row_length(
    row_lengths: Sequence[int] = (100, 200, 300),
    *,
    batch_size: int = 16,
    rate: float = 1000.0,
    horizon: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> dict[str, list[float]]:
    """Fig. 15(c): utility vs batch row length L."""
    batches = [BatchConfig(num_rows=batch_size, row_length=L) for L in row_lengths]
    return _sweep(batches, list(row_lengths), "row_length", rate=rate, horizon=horizon, seeds=seeds)
