"""Plain-text table formatting for experiment series.

Every ``run_fig*`` harness returns ``{column_name: [values...]}``;
:func:`format_series_table` renders that as the aligned text table the
benchmark suite prints (and EXPERIMENTS.md embeds).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_series_table"]


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


def format_series_table(
    series: Mapping[str, Sequence[object]], title: str = ""
) -> str:
    cols = list(series.keys())
    if not cols:
        return title
    n = len(series[cols[0]])
    for c in cols:
        if len(series[c]) != n:
            raise ValueError(f"column {c!r} has {len(series[c])} rows, expected {n}")
    rows = [[_fmt(series[c][i]) for c in cols] for i in range(n)]
    widths = [
        max(len(c), max((len(r[j]) for r in rows), default=0))
        for j, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.rjust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
