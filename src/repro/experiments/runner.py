"""Run every figure (and optionally every ablation) in one call.

``run_all_figures()`` regenerates the whole evaluation section and
returns ``{figure_id: series}``; ``write_report()`` renders them as one
markdown-ish text report (tables + ASCII charts) — what the CLI's
``figure all`` emits.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.ascii_plot import ascii_chart
from repro.experiments.tables import format_series_table

__all__ = ["run_all_figures", "run_all_ablations", "write_report"]


def _figure_runners(fast: bool) -> dict[str, Callable[[], dict]]:
    from repro.experiments import (
        run_fig09_utility,
        run_fig10_throughput,
        run_fig11_fig12_fcfs,
        run_fig13_fig14_slot_speedup,
        run_fig15a_batch_size,
        run_fig15b_variance,
        run_fig15c_row_length,
        run_fig16_overhead,
    )

    kw = {"horizon": 4.0, "seeds": (0,)} if fast else {"horizon": 10.0, "seeds": (0, 1)}
    return {
        "fig9": lambda: run_fig09_utility(**kw),
        "fig10": lambda: run_fig10_throughput(**kw),
        "fig11": lambda: run_fig11_fig12_fcfs(20.0, **kw),
        "fig12": lambda: run_fig11_fig12_fcfs(100.0, **kw),
        "fig13": lambda: run_fig13_fig14_slot_speedup(10),
        "fig14": lambda: run_fig13_fig14_slot_speedup(32),
        "fig15a": lambda: run_fig15a_batch_size(**kw),
        "fig15b": lambda: run_fig15b_variance(**kw),
        "fig15c": lambda: run_fig15c_row_length(**kw),
        "fig16": lambda: run_fig16_overhead(**kw),
    }


def run_all_figures(*, fast: bool = False) -> dict[str, dict]:
    """Regenerate every paper figure; returns ``{figure_id: series}``."""
    return {name: run() for name, run in _figure_runners(fast).items()}


def run_all_ablations() -> dict[str, dict]:
    from repro.experiments import ablations as ab

    return {
        "packing": ab.packing_policy_ablation(),
        "slots": ab.slot_policy_ablation(seeds=(0,)),
        "eta-q": ab.eta_q_ablation(seeds=(0,)),
        "memory": ab.early_cleaning_ablation(),
        "awareness": ab.concat_aware_ablation(seeds=(0,)),
        "kv-cache": ab.incremental_decode_ablation(),
    }


_X_KEYS = {
    "fig9": "rate",
    "fig10": "rate",
    "fig11": "rate",
    "fig12": "rate",
    "fig13": "slots",
    "fig14": "slots",
    "fig15a": "batch_size",
    "fig15b": "spread",
    "fig15c": "row_length",
    "fig16": "rate",
}


def write_report(
    results: dict[str, dict], *, charts: bool = True
) -> str:
    """Render a combined text report for a ``run_all_figures`` result."""
    parts: list[str] = ["# TCB reproduction — full figure sweep", ""]
    for name, series in results.items():
        parts.append(format_series_table(series, f"## {name}"))
        if charts:
            x_key = _X_KEYS.get(name)
            parts.append("")
            parts.append(ascii_chart(series, x_key=x_key))
        parts.append("")
    return "\n".join(parts)
