"""Recovery ablation + smoke: crash/restore cost and correctness.

Not a paper figure — the paper assumes the scheduler never dies — but
the durability plane (``docs/recovery.md``) makes a quantitative claim
worth sweeping: checkpoint interval trades journal replay length
against snapshot cost, while the *result* must not depend on it at
all.  Every cell of the sweep crashes a serving run mid-flight,
restores, finishes, and checks the terminal ledger digest against the
uninterrupted run's — a mismatch is a correctness bug, not a data
point.

``recovery_smoke`` is the same differential at CI scale (``make
recovery-smoke``): all three serving loops over a seed matrix; on a
mismatch it writes the journal JSONL and the digest diff next to the
failure so the broken replay can be inspected offline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

from repro.config import BatchConfig
from repro.durability import (
    DurabilityConfig,
    DurabilityPlane,
    digest_diff,
    ledger_digest,
    trace_digest,
)
from repro.engine.concat import ConcatEngine
from repro.experiments.serving_sweeps import make_scheduler, make_workload
from repro.faults import FaultConfig, FaultPlan, FaultyEngine
from repro.faults.plan import SchedulerCrash, SchedulerCrashed
from repro.obs.recorder import Tracer
from repro.serving.cluster import ClusterSimulator
from repro.serving.continuous import ContinuousBatchingSimulator
from repro.serving.simulator import ServingSimulator
from repro.types import Request

__all__ = [
    "CHECKPOINT_INTERVALS",
    "LOOPS",
    "recovery_point",
    "recovery_smoke",
    "run_recovery",
]

# 0 = genesis snapshot only (maximal replay); 1 = snapshot every step.
CHECKPOINT_INTERVALS = (1, 2, 5, 10, 0)

LOOPS = ("simulator", "cluster", "continuous")

_BATCH = BatchConfig(num_rows=16, row_length=100)


def _requests(seed: int, *, rate: float, horizon: float) -> list[Request]:
    return make_workload(rate, horizon=horizon, seed=seed).generate()


def _fault_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        FaultConfig(
            failure_rate=0.1,
            straggler_rate=0.05,
            oom_rate=0.05,
            crash_rate=0.02,
            downtime=0.3,
        ),
        seed=1000 + seed,
    )


def _run_loop(
    loop: str,
    requests: Sequence[Request],
    seed: int,
    horizon: float,
    plane: Optional[DurabilityPlane] = None,
    resume=None,
):
    """One run of the named serving loop; returns (metrics, tracer)."""
    tr = Tracer()
    if loop == "simulator":
        sim = ServingSimulator(
            make_scheduler("das", _BATCH),
            FaultyEngine(ConcatEngine(_BATCH), _fault_plan(seed)),
            trace=tr,
            durability=plane,
        )
        m = sim.run(requests, horizon=horizon, resume=resume).metrics
    elif loop == "cluster":
        sim = ClusterSimulator(
            make_scheduler("das", _BATCH),
            [
                FaultyEngine(ConcatEngine(_BATCH), _fault_plan(seed * 10 + i))
                for i in range(3)
            ],
            trace=tr,
            durability=plane,
        )
        m = sim.run(requests, horizon=horizon, resume=resume).metrics
    elif loop == "continuous":
        sim = ContinuousBatchingSimulator(
            _BATCH,
            seed=seed,
            fault_plan=_fault_plan(seed),
            trace=tr,
            durability=plane,
        )
        m = sim.run(requests, horizon=horizon, resume=resume)
    else:
        raise ValueError(f"unknown loop {loop!r}")
    return m, tr


def recovery_point(
    loop: str,
    seed: int,
    *,
    checkpoint_every: int = 5,
    rate: float = 60.0,
    horizon: float = 8.0,
    crash_step: Optional[int] = None,
    phase: str = "step",
) -> dict:
    """One crash/restore differential cell.

    Runs the uninterrupted reference, replays with a planned crash
    (mid-run by default), restores and finishes, and reports journal
    statistics plus whether the terminal ledger and trace digests
    match bit-for-bit (``match`` — anything but 1.0 is a bug).
    """
    requests = _requests(seed, rate=rate, horizon=horizon)
    ref_m, ref_tr = _run_loop(loop, requests, seed, horizon)

    probe = DurabilityPlane(DurabilityConfig())
    _run_loop(loop, requests, seed, horizon, plane=probe)
    nsteps = probe.step

    # A planned crash is a no-op if its step never reaches the target
    # phase (e.g. a dispatch-phase crash on a step that packed nothing),
    # and a cleanly-completed run refuses to restore — so walk outward
    # from the requested step until the crash actually fires.
    mid = max(1, nsteps // 2) if crash_step is None else crash_step
    candidates = [mid]
    if crash_step is None:
        for off in range(1, nsteps):
            candidates += [
                s for s in (mid + off, mid - off) if 1 <= s < nsteps
            ]
    plane = None
    crashed = False
    for cand in candidates:
        plane = DurabilityPlane(
            DurabilityConfig(
                checkpoint_every=checkpoint_every,
                crash=SchedulerCrash(cand, phase=phase),
            )
        )
        try:
            _run_loop(loop, requests, seed, horizon, plane=plane)
        except SchedulerCrashed:
            crashed = True
            crash_step = cand
            break
    if not crashed:
        raise RuntimeError(
            f"recovery_point: no {phase!r}-phase crash fired in any of "
            f"{len(candidates)} candidate steps ({loop}, seed={seed})"
        )
    state = plane.restore()
    m, tr = _run_loop(
        loop, requests, seed, horizon, plane=plane, resume=state
    )
    led, trd = ledger_digest(m), trace_digest(tr)
    ref_led, ref_trd = ledger_digest(ref_m), trace_digest(ref_tr)
    return {
        "loop": loop,
        "seed": seed,
        "checkpoint_every": checkpoint_every,
        "steps": nsteps,
        "crash_step": crash_step,
        "phase": phase,
        "crashed": crashed,
        "snapshots": plane.journal.audit()["snapshots"],
        "journal_records": len(plane.journal),
        "replayed": state.replayed_records,
        "voided": len(plane.voided),
        "match": float(led == ref_led and trd == ref_trd),
        "ledger_diff": digest_diff(led, ref_led),
        "trace_diff": digest_diff(trd, ref_trd),
        "plane": plane,
    }


def run_recovery(
    intervals: Sequence[int] = CHECKPOINT_INTERVALS,
    *,
    rate: float = 60.0,
    horizon: float = 8.0,
    seeds: Sequence[int] = (0, 1),
) -> dict[str, list[float]]:
    """Checkpoint-interval sweep (``python -m repro ablation recovery``).

    Seed-averaged per interval, on the single-engine loop: journal
    length, snapshot count, records replayed at restore, records
    voided at the crash boundary, and the differential ``match`` rate
    (must be 1.0 in every column — the sweep doubles as a test).
    """
    out: dict[str, list[float]] = {"checkpoint_every": [float(k) for k in intervals]}
    cols = ("journal_records", "snapshots", "replayed", "voided", "match")
    acc: dict[str, list[float]] = {k: [] for k in cols}
    for k in intervals:
        sums = {c: 0.0 for c in cols}
        for seed in seeds:
            cell = recovery_point(
                "simulator",
                seed,
                checkpoint_every=k,
                rate=rate,
                horizon=horizon,
            )
            for c in cols:
                sums[c] += float(cell[c])
        for c in cols:
            acc[c].append(sums[c] / len(seeds))
    out.update(acc)
    return out


def recovery_smoke(
    *,
    seeds: Sequence[int] = (0, 1, 2),
    loops: Sequence[str] = LOOPS,
    checkpoint_every: int = 4,
    rate: float = 60.0,
    horizon: float = 8.0,
    artifact_dir: str = "recovery_smoke_artifacts",
) -> None:
    """CI chaos smoke: crash/restore differential over a seed matrix.

    Prints one line per (loop, seed) cell; on any digest mismatch,
    writes the failing cell's journal (JSONL) and digest diff into
    *artifact_dir* and raises ``SystemExit(1)`` so CI can upload the
    artifacts from the failed job.
    """
    failures = []
    for loop in loops:
        for seed in seeds:
            # Alternate crash windows: odd seeds crash inside dispatch
            # (mid-step, write-ahead records already journaled), even
            # seeds at the step boundary.
            phase = "dispatch" if seed % 2 else "step"
            cell = recovery_point(
                loop,
                seed,
                checkpoint_every=checkpoint_every,
                rate=rate,
                horizon=horizon,
                phase=phase,
            )
            ok = cell["match"] == 1.0
            print(
                f"recovery smoke: {loop:<10} seed={seed} "
                f"crash@{cell['crash_step']}/{cell['steps']}:{phase} "
                f"replayed={cell['replayed']} voided={cell['voided']} "
                f"{'OK' if ok else 'MISMATCH'}"
            )
            if not ok:
                failures.append(cell)
    if failures:
        art = Path(artifact_dir)
        art.mkdir(parents=True, exist_ok=True)
        for cell in failures:
            stem = f"{cell['loop']}_seed{cell['seed']}"
            (art / f"{stem}.journal.jsonl").write_text(
                cell["plane"].journal.to_jsonl()
            )
            (art / f"{stem}.diff.json").write_text(
                json.dumps(
                    {
                        "ledger_diff": cell["ledger_diff"],
                        "trace_diff": cell["trace_diff"],
                        "crash_step": cell["crash_step"],
                        "checkpoint_every": cell["checkpoint_every"],
                    },
                    indent=2,
                )
            )
        raise SystemExit(
            f"recovery smoke: {len(failures)} mismatched cell(s); "
            f"journals and digest diffs written to {art}/"
        )
    print(
        f"recovery smoke: {len(loops) * len(seeds)} cells, "
        "all crash/restore runs bit-identical to uninterrupted runs"
    )
