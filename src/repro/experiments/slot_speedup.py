"""Figs. 13–14: speedup of slotted over pure ConcatBatching.

The paper fills batches of row length 400 (batch size 10 for Fig. 13, 32
for Fig. 14) and measures average batch inference time with 1, 2, 4, 5,
7, 10 and 20 slots; 1 slot *is* pure ConcatBatching (speedup 1 by
definition).

Two modes:

- ``mode="cost"`` (default) — latency from the calibrated GPU cost model
  (paper-scale reproduction),
- ``mode="measured"`` — actually executes the tiny NumPy model and
  wall-clock times pure vs slotted attention (same code path the
  correctness tests validate; CPU BLAS has no occupancy floor, so the
  measured curve keeps growing with slot count — kept as an ablation).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.config import BatchConfig, ModelConfig
from repro.core.slotting import pack_into_slots, slot_size_fixed_count
from repro.engine.cost_model import GPUCostModel
from repro.model.seq2seq import Seq2SeqModel
from repro.types import Request, make_requests

__all__ = ["PAPER_SLOT_COUNTS", "run_fig13_fig14_slot_speedup", "slotted_batch_time"]

PAPER_SLOT_COUNTS = (1, 2, 4, 5, 7, 10, 20)


def _full_row_requests(
    num_rows: int, row_length: int, num_slots: int, seed: int = 0
) -> list[Request]:
    """Requests that exactly fill every slot of every row.

    This mirrors the microbenchmark's intent: the batch is full either
    way, only the slot structure differs.
    """
    z = slot_size_fixed_count(num_slots, row_length)
    lengths = []
    per_row = []
    start = 0
    while start < row_length:
        size = min(z, row_length - start)
        per_row.append(size)
        start += size
    for _ in range(num_rows):
        lengths.extend(per_row)
    return make_requests(lengths, start_id=seed * 100000)


def slotted_batch_time(
    num_rows: int,
    row_length: int,
    num_slots: int,
    cost_model: GPUCostModel,
) -> float:
    """Cost-model inference time of a full batch divided into slots."""
    reqs = _full_row_requests(num_rows, row_length, num_slots)
    res = pack_into_slots(
        reqs, num_rows, row_length, slot_size_fixed_count(num_slots, row_length)
    )
    if res.rejected:
        raise RuntimeError("slot-speedup workload should always fit")
    return cost_model.layout_time(res.layout)


def _measured_batch_time(
    num_rows: int, row_length: int, num_slots: int, repeats: int = 3
) -> float:
    cfg = ModelConfig.tiny(max_len=row_length + 1)
    model = Seq2SeqModel(cfg, seed=0)
    rng = np.random.default_rng(0)
    reqs = [
        r.with_tokens(rng.integers(4, cfg.vocab_size, size=r.length))
        for r in _full_row_requests(num_rows, row_length, num_slots)
    ]
    res = pack_into_slots(
        reqs, num_rows, row_length, slot_size_fixed_count(num_slots, row_length)
    )
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        model.encode_layout(res.layout, slotted=True)
        best = min(best, time.perf_counter() - t0)
    return best


def run_fig13_fig14_slot_speedup(
    batch_size: int,
    row_length: int = 400,
    slot_counts: Sequence[int] = PAPER_SLOT_COUNTS,
    *,
    mode: str = "cost",
    cost_model: Optional[GPUCostModel] = None,
) -> dict[str, list[float]]:
    """Fig. 13 (batch_size=10) / Fig. 14 (batch_size=32) series."""
    cm = cost_model or GPUCostModel.calibrated()
    times: list[float] = []
    for n in slot_counts:
        if mode == "cost":
            times.append(slotted_batch_time(batch_size, row_length, n, cm))
        elif mode == "measured":
            times.append(_measured_batch_time(batch_size, min(row_length, 128), n))
        else:
            raise ValueError(f"unknown mode {mode!r}")
    base = times[slot_counts.index(1)] if 1 in slot_counts else times[0]
    return {
        "slots": list(slot_counts),
        "batch_time": times,
        "speedup": [base / t for t in times],
    }
