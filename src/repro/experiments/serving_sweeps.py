"""Serving-throughput/utility sweeps: Figs. 9, 10, 11, 12.

The paper's §6.2.1–6.2.2 setup: requests of 3–100 tokens (truncated
normal, average 20), Poisson arrivals, batch size 64.  Fig. 9/10 feed all
three systems the DAS scheduling results; Figs. 11/12 switch to FCFS to
isolate the inference-engine (batching) efficiency, at length spread 20
and 100 respectively.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.config import BatchConfig, SchedulerConfig
from repro.engine.base import InferenceEngine
from repro.engine.concat import ConcatEngine
from repro.engine.cost_model import GPUCostModel
from repro.engine.naive import NaiveEngine
from repro.engine.turbo import TurboEngine
from repro.scheduling.base import Scheduler
from repro.scheduling.baselines import FCFSScheduler
from repro.scheduling.das import DASScheduler
from repro.serving.metrics import ServingMetrics
from repro.serving.simulator import ServingSimulator
from repro.workload.deadlines import DeadlineModel
from repro.workload.generator import LengthDistribution, WorkloadGenerator

__all__ = [
    "PAPER_RATES_DAS",
    "PAPER_RATES_FCFS",
    "make_engine",
    "make_scheduler",
    "make_workload",
    "serving_point",
    "run_fig09_utility",
    "run_fig10_throughput",
    "run_fig11_fig12_fcfs",
]

# X-axes exactly as in the paper's figures.
PAPER_RATES_DAS = (40, 80, 120, 180, 200, 250, 350, 450, 1000, 1500)
PAPER_RATES_FCFS = (40, 60, 80, 100, 120, 140, 250, 1000, 1250, 1500)

SYSTEMS = ("TNB", "TTB", "TCB")

_ENGINES: dict[str, type[InferenceEngine]] = {
    "TNB": NaiveEngine,
    "TTB": TurboEngine,
    "TCB": ConcatEngine,
}


def make_engine(
    system: str,
    batch: BatchConfig,
    cost_model: Optional[GPUCostModel] = None,
) -> InferenceEngine:
    try:
        cls = _ENGINES[system]
    except KeyError:
        raise ValueError(f"unknown system {system!r}; expected one of {SYSTEMS}")
    return cls(batch, cost_model=cost_model or GPUCostModel.calibrated())


def make_scheduler(policy: str, batch: BatchConfig) -> Scheduler:
    if policy == "das":
        return DASScheduler(batch, SchedulerConfig())
    if policy == "fcfs":
        return FCFSScheduler(batch)
    raise ValueError(f"unknown policy {policy!r}")


def make_workload(
    rate: float,
    *,
    spread: float = 20.0,
    horizon: float = 10.0,
    seed: int = 0,
    base_slack: float = 3.0,
    jitter: float = 1.0,
) -> WorkloadGenerator:
    """§6.2.1 workload: 3–100 tokens, average 20, Poisson arrivals."""
    return WorkloadGenerator(
        rate=rate,
        lengths=LengthDistribution(
            family="normal", mean=20.0, spread=spread, low=3, high=100
        ),
        deadlines=DeadlineModel(base_slack=base_slack, jitter=jitter),
        horizon=horizon,
        seed=seed,
    )


def serving_point(
    system: str,
    policy: str,
    rate: float,
    *,
    batch: Optional[BatchConfig] = None,
    spread: float = 20.0,
    horizon: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
    cost_model: Optional[GPUCostModel] = None,
) -> ServingMetrics:
    """One (system, policy, rate) cell, seed-averaged.

    Returns a synthetic :class:`ServingMetrics` whose utility/throughput
    are the across-seed means (per-request lists hold the union).
    """
    if batch is None:
        batch = BatchConfig(num_rows=64, row_length=100)
    agg = ServingMetrics(horizon=horizon * len(seeds))
    for seed in seeds:
        sim = ServingSimulator(
            make_scheduler(policy, batch), make_engine(system, batch, cost_model)
        )
        m = sim.run(make_workload(rate, spread=spread, horizon=horizon, seed=seed)).metrics
        agg.served.extend(m.served)
        agg.expired.extend(m.expired)
        # Finish times are merged with seed-offset keys so latency stats
        # aggregate across runs without id collisions.
        for rid, pair in m.finish_times.items():
            agg.finish_times[(seed + 1) * 10_000_000 + rid] = pair
        agg.total_engine_time += m.total_engine_time
        agg.total_scheduler_time += m.total_scheduler_time
        agg.num_batches += m.num_batches
        agg.useful_tokens += m.useful_tokens
        agg.padded_tokens += m.padded_tokens
    return agg


def _sweep(
    policy: str,
    rates: Sequence[float],
    metric: str,
    *,
    spread: float = 20.0,
    horizon: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
    cost_model: Optional[GPUCostModel] = None,
) -> dict[str, list[float]]:
    out: dict[str, list[float]] = {"rate": list(rates)}
    for system in SYSTEMS:
        series = []
        for rate in rates:
            m = serving_point(
                system,
                policy,
                rate,
                spread=spread,
                horizon=horizon,
                seeds=seeds,
                cost_model=cost_model,
            )
            value = m.total_utility if metric == "utility" else m.throughput
            if metric == "utility":
                value /= len(seeds)  # per-run utility, as the paper plots
            series.append(value)
        out[f"{policy.upper()}-{system}"] = series
    return out


def run_fig09_utility(
    rates: Sequence[float] = PAPER_RATES_DAS,
    *,
    horizon: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> dict[str, list[float]]:
    """Fig. 9: total utility vs arrival rate under DAS scheduling."""
    return _sweep("das", rates, "utility", horizon=horizon, seeds=seeds)


def run_fig10_throughput(
    rates: Sequence[float] = PAPER_RATES_DAS,
    *,
    horizon: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> dict[str, list[float]]:
    """Fig. 10: serving throughput vs arrival rate under DAS."""
    return _sweep("das", rates, "throughput", horizon=horizon, seeds=seeds)


def run_fig11_fig12_fcfs(
    spread: float,
    rates: Sequence[float] = PAPER_RATES_FCFS,
    *,
    horizon: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> dict[str, list[float]]:
    """Figs. 11 (σ=20) and 12 (σ=100): FCFS throughput vs arrival rate."""
    return _sweep("fcfs", rates, "throughput", spread=spread, horizon=horizon, seeds=seeds)
