"""Fig. 16: DAS scheduling overhead relative to batch inference time.

The paper measures the wall-clock running time of the DAS algorithm and
reports its ratio to a single batch's inference time across arrival
rates 100–400 req/s (≈2% at 400 req/s).  DAS runs on the host CPU here
exactly as it would in the real system, so this figure is *measured*,
not modelled: only the denominator (batch inference time) comes from the
cost model.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.engine.cost_model import GPUCostModel
from repro.scheduling.das import DASScheduler
from repro.serving.simulator import ServingSimulator
from repro.experiments.serving_sweeps import make_workload

__all__ = ["PAPER_OVERHEAD_RATES", "run_fig16_overhead"]

PAPER_OVERHEAD_RATES = (100, 200, 300, 400)


def run_fig16_overhead(
    rates: Sequence[float] = PAPER_OVERHEAD_RATES,
    *,
    batch: Optional[BatchConfig] = None,
    horizon: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
    cost_model: Optional[GPUCostModel] = None,
) -> dict[str, list[float]]:
    """DAS runtime as a percentage of single-batch inference time."""
    if batch is None:
        batch = BatchConfig(num_rows=64, row_length=100)
    cm = cost_model or GPUCostModel.calibrated()
    ratios = []
    for rate in rates:
        sched_time = 0.0
        engine_time = 0.0
        batches = 0
        for seed in seeds:
            sim = ServingSimulator(
                DASScheduler(batch), ConcatEngine(batch, cost_model=cm)
            )
            m = sim.run(make_workload(rate, horizon=horizon, seed=seed)).metrics
            sched_time += m.total_scheduler_time
            engine_time += m.total_engine_time
            batches += m.num_batches
        mean_sched = sched_time / max(batches, 1)
        mean_batch = engine_time / max(batches, 1)
        ratios.append(100.0 * mean_sched / mean_batch if mean_batch > 0 else 0.0)
    return {"rate": list(rates), "overhead_percent": ratios}
