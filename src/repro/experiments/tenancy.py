"""Noisy-neighbor sweep + smoke: tenant isolation under a quota-busting tenant.

Not a paper figure — the paper's workloads are tenant-blind — but the
tenancy plane (``docs/tenancy.md``) makes a quantitative claim worth
measuring: when a batch tenant ramps its offered load to many multiples
of its token-bucket quota, a premium tenant sharing the queue should
keep (almost) the on-time rate it gets running solo, while the cluster
as a whole keeps (almost) the aggregate served-token throughput of a
tenant-blind run — isolation without giving up concatenation
efficiency.

``tenancy_smoke`` is the CI-scale check (``make tenancy-smoke``): the
8x-quota noisy-neighbor cell over a seed matrix asserting both gates,
writing the sweep as a JSON artifact either way so CI can upload it.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Optional, Sequence

from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.experiments.serving_sweeps import make_scheduler, make_workload
from repro.serving.simulator import ServingSimulator
from repro.tenancy import TenancyPlane, TenantClass, TenantRegistry
from repro.types import Request

__all__ = ["run_tenancy", "tenancy_point", "tenancy_smoke"]

_BATCH = BatchConfig(num_rows=4, row_length=100)

# Mean request length of the §6.2.1 workload — converts the batch
# tenant's token-bucket quota (tokens/s) into a request rate.
_MEAN_LEN = 20.0

# Smoke gates: premium on-time rate must stay within this fraction of
# its solo reference, and aggregate served tokens within this fraction
# of the tenant-blind baseline.
SMOKE_PREMIUM_MARGIN = 0.10
SMOKE_THROUGHPUT_MARGIN = 0.15


def _registry(quota: float) -> TenantRegistry:
    """Premium unthrottled; batch capped at ``quota`` tokens/s."""
    return TenantRegistry(
        {
            "premium": "premium",
            "batch": TenantClass(
                name="batch",
                weight=0.25,
                deadline_slack=4.0,
                rate=quota,
                burst=2.0 * quota,
            ),
        }
    )


def _mixed_requests(
    seed: int,
    *,
    premium_rate: float,
    batch_rate: float,
    horizon: float,
    registry: TenantRegistry,
) -> list[Request]:
    """Premium + batch arrival streams merged into one sorted trace."""
    prem = make_workload(premium_rate, horizon=horizon, seed=seed)
    prem = type(prem)(
        **{
            **prem.__dict__,
            "tenant_mix": (("premium", 1.0),),
            "registry": registry,
        }
    ).generate()
    bat = make_workload(batch_rate, horizon=horizon, seed=seed + 1000)
    bat = type(bat)(
        **{
            **bat.__dict__,
            "tenant_mix": (("batch", 1.0),),
            "registry": registry,
        }
    ).generate(start_id=1_000_000)
    return sorted(prem + bat, key=lambda r: (r.arrival, r.request_id))


def _premium_p99_latency(metrics, requests: Sequence[Request]) -> float:
    prem_ids = {r.request_id for r in requests if r.tenant == "premium"}
    lats = sorted(
        finish - arrival
        for rid, (arrival, finish) in metrics.finish_times.items()
        if rid in prem_ids
    )
    if not lats:
        return 0.0
    rank = max(1, math.ceil(0.99 * len(lats)))
    return lats[rank - 1]


def tenancy_point(
    seed: int,
    *,
    ramp: float = 8.0,
    premium_rate: float = 30.0,
    quota: float = 400.0,
    horizon: float = 30.0,
) -> dict:
    """One noisy-neighbor differential cell.

    Three runs at equal premium load: premium running *solo* under the
    plane (the isolation reference), the mixed trace *tenant-blind*
    (the throughput reference), and the mixed trace under the plane —
    with the batch tenant offering ``ramp``x its token-bucket quota.
    """
    registry = _registry(quota)
    batch_rate = ramp * quota / _MEAN_LEN
    mixed = _mixed_requests(
        seed,
        premium_rate=premium_rate,
        batch_rate=batch_rate,
        horizon=horizon,
        registry=registry,
    )
    solo = _mixed_requests(
        seed,
        premium_rate=premium_rate,
        batch_rate=1e-9,
        horizon=horizon,
        registry=registry,
    )
    solo = [r for r in solo if r.tenant == "premium"]
    cell: dict = {
        "seed": seed,
        "ramp": ramp,
        "premium_rate": premium_rate,
        "quota": quota,
        "batch_rate": batch_rate,
    }

    def _run(requests, plane):
        sim = ServingSimulator(
            make_scheduler("das", _BATCH),
            ConcatEngine(_BATCH),
            tenancy=plane,
        )
        m = sim.run(requests, horizon=horizon).metrics
        m.assert_conservation()
        return m

    plane = TenancyPlane(registry, seed=seed)
    m_solo = _run(solo, plane)
    led = plane.book.ledger("premium")
    cell["premium_solo"] = {
        "on_time_rate": led.on_time_rate,
        "served": led.served,
        "p99_latency": _premium_p99_latency(m_solo, solo),
    }

    m_blind = _run(mixed, None)
    cell["blind"] = {
        "served_tokens": sum(r.length for r in m_blind.served),
        "served": m_blind.num_served,
    }

    plane = TenancyPlane(registry, seed=seed)
    m_plane = _run(mixed, plane)
    prem = plane.book.ledger("premium")
    bat = plane.book.ledger("batch")
    cell["plane"] = {
        "served_tokens": sum(r.length for r in m_plane.served),
        "served": m_plane.num_served,
        "premium_on_time_rate": prem.on_time_rate,
        "premium_p99_latency": _premium_p99_latency(m_plane, mixed),
        "batch_quota_rejected": bat.quota_rejected,
        "batch_served": bat.served,
    }

    solo_rate = cell["premium_solo"]["on_time_rate"]
    cell["premium_retention"] = (
        1.0
        if solo_rate <= 0
        else cell["plane"]["premium_on_time_rate"] / solo_rate
    )
    blind_tokens = cell["blind"]["served_tokens"]
    cell["throughput_retention"] = (
        1.0
        if blind_tokens <= 0
        else cell["plane"]["served_tokens"] / blind_tokens
    )
    return cell


def run_tenancy(
    ramps: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    *,
    premium_rate: float = 30.0,
    quota: float = 400.0,
    horizon: float = 30.0,
    seeds: Sequence[int] = (0, 1),
) -> dict[str, list[float]]:
    """Noisy-neighbor ramp sweep (``python -m repro ablation tenancy``).

    Seed-averaged per ramp multiple: premium on-time rate (mixed vs
    solo), aggregate served tokens (plane vs tenant-blind), and the
    batch tenant's quota rejections.
    """
    out: dict[str, list[float]] = {"batch_ramp": list(ramps)}
    cols = (
        "premium_on_time",
        "premium_solo_on_time",
        "premium_retention",
        "served_tokens_plane",
        "served_tokens_blind",
        "throughput_retention",
        "batch_quota_rejected",
    )
    acc: dict[str, list[float]] = {c: [] for c in cols}
    for ramp in ramps:
        sums = {c: 0.0 for c in cols}
        for seed in seeds:
            cell = tenancy_point(
                seed,
                ramp=ramp,
                premium_rate=premium_rate,
                quota=quota,
                horizon=horizon,
            )
            sums["premium_on_time"] += cell["plane"]["premium_on_time_rate"]
            sums["premium_solo_on_time"] += cell["premium_solo"]["on_time_rate"]
            sums["premium_retention"] += cell["premium_retention"]
            sums["served_tokens_plane"] += cell["plane"]["served_tokens"]
            sums["served_tokens_blind"] += cell["blind"]["served_tokens"]
            sums["throughput_retention"] += cell["throughput_retention"]
            sums["batch_quota_rejected"] += cell["plane"]["batch_quota_rejected"]
        for c in cols:
            acc[c].append(sums[c] / len(seeds))
    out.update(acc)
    return out


def tenancy_smoke(
    *,
    seeds: Sequence[int] = (0, 1, 2),
    ramp: float = 8.0,
    premium_rate: float = 30.0,
    quota: float = 400.0,
    horizon: float = 30.0,
    premium_margin: float = SMOKE_PREMIUM_MARGIN,
    throughput_margin: float = SMOKE_THROUGHPUT_MARGIN,
    artifact_dir: str = "benchmarks/results/tenancy_smoke",
    artifact: Optional[str] = "sweep.json",
) -> None:
    """CI noisy-neighbor smoke: isolation *and* throughput retention.

    Per seed, at ``ramp``x the batch tenant's quota: the premium
    tenant's on-time rate must stay within ``premium_margin`` of its
    solo reference, and aggregate served tokens within
    ``throughput_margin`` of the tenant-blind baseline.  Prints one
    line per seed, writes the sweep JSON into *artifact_dir* (always —
    the artifact is the record, not just the failure dump), and raises
    ``SystemExit(1)`` on any gate failure.
    """
    cells = []
    failures = []
    for seed in seeds:
        cell = tenancy_point(
            seed,
            ramp=ramp,
            premium_rate=premium_rate,
            quota=quota,
            horizon=horizon,
        )
        cells.append(cell)
        ok_premium = cell["premium_retention"] >= 1.0 - premium_margin
        ok_tokens = cell["throughput_retention"] >= 1.0 - throughput_margin
        print(
            f"tenancy smoke: seed={seed} "
            f"premium on-time {cell['premium_solo']['on_time_rate']:.2f} solo "
            f"-> {cell['plane']['premium_on_time_rate']:.2f} mixed "
            f"({cell['premium_retention']:.0%} retained) "
            f"tokens {cell['blind']['served_tokens']} blind "
            f"-> {cell['plane']['served_tokens']} plane "
            f"({cell['throughput_retention']:.0%} retained) "
            f"quota_rejected={cell['plane']['batch_quota_rejected']} "
            f"{'OK' if ok_premium and ok_tokens else 'GATE FAILED'}"
        )
        if not (ok_premium and ok_tokens):
            failures.append(seed)
    if artifact is not None:
        art = Path(artifact_dir)
        art.mkdir(parents=True, exist_ok=True)
        (art / artifact).write_text(
            json.dumps(
                {
                    "ramp": ramp,
                    "premium_margin": premium_margin,
                    "throughput_margin": throughput_margin,
                    "quota": quota,
                    "cells": cells,
                    "failures": failures,
                },
                indent=2,
            )
        )
    if failures:
        raise SystemExit(
            f"tenancy smoke: seed(s) {failures} failed the isolation/"
            f"throughput gates; sweep written to {artifact_dir}/"
        )
    print(
        f"tenancy smoke: {len(seeds)} seeds, premium kept >= "
        f"{1.0 - premium_margin:.0%} of its solo on-time rate and the "
        f"cluster kept >= {1.0 - throughput_margin:.0%} of tenant-blind "
        f"served tokens at {ramp:.0f}x quota"
    )
