"""Overload sweep: goodput vs offered load, with and without shedding.

Not a paper figure — the paper's sweeps stop where the system saturates
— but the natural robustness question past that point: what happens at
2–4× capacity?  Without overload management a FIFO policy exhibits
classic *goodput collapse*: the queue grows without bound, every
request waits longer than its slack, and the engine spends its time
completing requests whose deadlines already passed.  With the overload
plane (``repro.overload``: bounded queue + load shedding + hysteresis
degradation) goodput plateaus near its peak instead.

The sweep drives the single-engine serving loop at multiples of its
measured capacity (≈150 req/s for the default 16×100 batch under the
§6.2.1 workload) and reports *on-time* goodput — utility summed over
responses that finished by their deadline — which is exactly the
quantity collapse destroys.  An optional chaos rate injects the PR 2
fault plane on top, with the circuit breaker quarantining the engine
between failure bursts; conservation and trace reconciliation are
asserted inside every run.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import BatchConfig
from repro.engine.concat import ConcatEngine
from repro.engine.cost_model import GPUCostModel
from repro.experiments.serving_sweeps import make_scheduler, make_workload
from repro.faults import FaultConfig, FaultPlan, FaultyEngine
from repro.overload import (
    BreakerConfig,
    DegradationConfig,
    OverloadConfig,
    OverloadController,
    QueueLimits,
    make_shedder,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.simulator import ServingSimulator

__all__ = [
    "OVERLOAD_RATES",
    "default_overload_config",
    "overload_point",
    "run_overload",
]

# Offered load in req/s: ~0.5×, 1×, 2×, 3×, 4× of single-engine
# capacity for the default 16×100 batch under the §6.2.1 workload.
OVERLOAD_RATES = (75.0, 150.0, 300.0, 450.0, 600.0)


def default_overload_config(
    batch: BatchConfig,
    *,
    policy: str = "latest-deadline",
    seed: int = 0,
    breaker: bool = False,
) -> OverloadConfig:
    """The sweep's overload plane: bounded queue + shedding + hysteresis.

    The token limit is twice one batch's capacity — enough buffered work
    to never starve the engine, small enough that whatever queues still
    meets its deadline.  Degradation tightens admission once the queue
    delay (or the rolling miss rate) says the backlog is unhealthy.
    """
    return OverloadConfig(
        limits=QueueLimits(max_tokens=2 * batch.capacity_tokens),
        shedding=make_shedder(policy, seed=seed),
        breaker=BreakerConfig() if breaker else None,
        degradation=DegradationConfig(
            shed_min_slack=1.0, brownout_min_slack=2.0
        ),
    )


def overload_point(
    rate: float,
    *,
    shedding: bool,
    policy: str = "fcfs",
    shed_policy: str = "latest-deadline",
    batch: Optional[BatchConfig] = None,
    horizon: float = 10.0,
    seed: int = 0,
    chaos: float = 0.0,
    cost_model: Optional[GPUCostModel] = None,
) -> ServingMetrics:
    """One (rate, shedding?, seed) serving run, optionally under chaos.

    FCFS is the default serving policy because it is the one that
    collapses — DAS already sheds implicitly by never selecting
    infeasible requests, so overload management matters most for the
    schedulers deployments actually run.
    """
    if batch is None:
        batch = BatchConfig(num_rows=16, row_length=100)
    engine = ConcatEngine(
        batch, cost_model=cost_model or GPUCostModel.calibrated()
    )
    if chaos > 0.0:
        plan = FaultPlan(FaultConfig.chaos(chaos), seed=1000 + seed)
        engine = FaultyEngine(engine, plan)
    overload = None
    if shedding:
        overload = OverloadController(
            default_overload_config(
                batch, policy=shed_policy, seed=seed, breaker=chaos > 0.0
            )
        )
    sim = ServingSimulator(
        make_scheduler(policy, batch), engine, overload=overload
    )
    return sim.run(make_workload(rate, horizon=horizon, seed=seed)).metrics


def run_overload(
    rates: Sequence[float] = OVERLOAD_RATES,
    *,
    horizon: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
    chaos: float = 0.0,
    shed_policy: str = "latest-deadline",
) -> dict[str, list[float]]:
    """Goodput sweep over offered load, shedding off vs on (seed means)."""
    out: dict[str, list[float]] = {"rate": list(rates)}
    for label, shedding in (("OFF", False), ("ON", True)):
        cols: dict[str, list[float]] = {
            "goodput": [],
            "on_time": [],
            "served": [],
            "shed": [],
            "expired": [],
        }
        for rate in rates:
            acc = {k: 0.0 for k in cols}
            for seed in seeds:
                m = overload_point(
                    rate,
                    shedding=shedding,
                    shed_policy=shed_policy,
                    horizon=horizon,
                    seed=seed,
                    chaos=chaos,
                )
                acc["goodput"] += m.goodput_utility
                acc["on_time"] += m.num_on_time
                acc["served"] += m.num_served
                acc["shed"] += m.shed
                acc["expired"] += m.num_expired
            for k in cols:
                cols[k].append(acc[k] / len(seeds))
        for k, series in cols.items():
            out[f"{label}_{k}"] = series
    return out
