"""Configuration dataclasses for the model, engines and serving system.

The defaults mirror the paper's experimental settings (§6.1): a Seq2Seq
encoder-decoder with 3 encoder and 3 decoder layers, hidden dimension 3072,
8 attention heads and a maximum sentence length of 400 tokens.

The *real* NumPy engine is typically run with a much smaller
:func:`ModelConfig.tiny` configuration in tests and examples; the analytic
cost model (see :mod:`repro.engine.cost_model`) uses the paper-scale
dimensions because it never materialises weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ModelConfig", "BatchConfig", "SchedulerConfig", "ServingConfig"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of the Seq2Seq transformer (paper §6.1)."""

    vocab_size: int = 1000
    d_model: int = 3072
    num_heads: int = 8
    num_encoder_layers: int = 3
    num_decoder_layers: int = 3
    d_ff: int = 0  # 0 -> 4 * d_model
    max_len: int = 400
    eos_token: int = 1
    bos_token: int = 2
    pad_token: int = 0

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ValueError(
                f"d_model={self.d_model} not divisible by num_heads={self.num_heads}"
            )
        if self.vocab_size < 4:
            raise ValueError("vocab_size must leave room for special tokens")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.num_heads

    @property
    def ffn_dim(self) -> int:
        return self.d_ff if self.d_ff > 0 else 4 * self.d_model

    @staticmethod
    def paper() -> "ModelConfig":
        """The configuration used in the paper's evaluation."""
        return ModelConfig()

    @staticmethod
    def tiny(vocab_size: int = 64, max_len: int = 64) -> "ModelConfig":
        """A small configuration for fast real-execution tests."""
        return ModelConfig(
            vocab_size=vocab_size,
            d_model=32,
            num_heads=4,
            num_encoder_layers=2,
            num_decoder_layers=2,
            max_len=max_len,
        )


@dataclass(frozen=True)
class BatchConfig:
    """Batch geometry: ``B`` rows of at most ``L`` tokens (paper §5.1)."""

    num_rows: int = 64
    row_length: int = 400

    def __post_init__(self) -> None:
        if self.num_rows < 1 or self.row_length < 1:
            raise ValueError("num_rows and row_length must be >= 1")

    @property
    def capacity_tokens(self) -> int:
        return self.num_rows * self.row_length


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunable parameters of the DAS algorithm (paper §5.2).

    ``eta`` (η) is the fraction of the saturating prefix taken as the
    utility-dominant set; ``q`` scales the utility threshold of the
    deadline-aware set.  The paper requires ``eta + q = 1`` for the
    competitive-ratio proof; we warn-free allow other values but
    :func:`competitive_ratio` always reports ``ηq / (ηq + 1)``.
    """

    eta: float = 0.5
    q: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 < self.eta < 1.0):
            raise ValueError(f"eta must be in (0, 1), got {self.eta}")
        if not (0.0 < self.q < 1.0):
            raise ValueError(f"q must be in (0, 1), got {self.q}")

    @property
    def competitive_ratio(self) -> float:
        """Theorem 5.1 bound: ``ηq / (ηq + 1)`` (⅕ at η=q=½)."""
        return (self.eta * self.q) / (self.eta * self.q + 1.0)


@dataclass(frozen=True)
class ServingConfig:
    """End-to-end serving-system settings used by the simulator."""

    batch: BatchConfig = field(default_factory=BatchConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    # Wall-clock horizon of one simulation, seconds.
    horizon: float = 10.0
    # Slack model: deadline = arrival + base_slack + slack_per_token * length.
    base_slack: float = 0.5
    slack_per_token: float = 0.0
