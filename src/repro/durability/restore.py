"""Rebuild serving state from latest snapshot + committed journal replay.

The crash-boundary resolution rules (see ``docs/recovery.md``):

- **committed** records (their step has a :class:`CommitRecord`) are
  replayed onto the snapshot in journal order; list-valued state is
  rebuilt by appending, scalar state is overwritten absolutely at each
  commit — so replay is idempotent and replaying a prefix twice is
  impossible by construction (a fresh deep copy is taken every call);
- **uncommitted** trailing records are *voided*: the crashed step never
  happened, and the resumed loop re-executes it deterministically from
  the commit boundary (the restored RNG/fault-engine cursors guarantee
  the re-execution consumes the same seeded events);
- the one exception is **write-ahead enqueues in server mode**
  (``recover_enqueues=True``): those submits were acknowledged to a
  client, so they are recovered into the restored queue with duplicate
  suppression — never served twice, never lost.

Replay touches the queue only through its ledgered mutators
(``drop``/``abandon``/``requeue``/``remove_served`` and the overload
ledger's ``shed_requests``) so restored state obeys the same
conservation discipline as live state; ``repro/durability/restore.py``
carries the policy waiver for re-applying ledgered drops (tcblint
TCB008).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.durability.journal import Journal
from repro.durability.records import (
    CommitRecord,
    DispatchRecord,
    EnqueueRecord,
    HedgeRecord,
    RequeueRecord,
    ShedRecord,
    TerminalRecord,
)
from repro.obs.spans import TERMINAL_KINDS, EventKind
from repro.overload.ledger import shed_requests
from repro.scheduling.queue import RequestQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serving.metrics import ServingMetrics

__all__ = ["RestoredState", "restore_state"]


def _apply_tracer_delta(tstate: Optional[dict], delta: tuple) -> None:
    """Replay one commit's tracer emissions onto the tracer-state dict."""
    if tstate is None:
        return
    for item in delta:
        tag = item[0]
        if tag == "event":
            _, rid, ev = item
            tstate["events"].setdefault(rid, []).append(ev)
            if ev.kind in TERMINAL_KINDS:
                tstate["outcome"][rid] = ev.kind.value
            if ev.kind is EventKind.SCHEDULED:
                tstate["attempts"][rid] = ev.attrs.get(
                    "attempt", tstate["attempts"].get(rid, 0)
                )
        elif tag == "dup":
            tstate["duplicate_terminals"] += 1
        elif tag == "batch":
            tstate["batches"].append(item[1])
        elif tag == "decision":
            tstate["decisions"].append(item[1])
        elif tag == "overload":
            tstate["overload_events"].append(item[1])
        elif tag == "durability":
            tstate["durability_events"].append(item[1])
        elif tag == "health":
            tstate.setdefault("health_events", []).append(item[1])
        elif tag == "tenant":
            tstate.setdefault("tenant_events", []).append(item[1])


@dataclass
class RestoredState:
    """Everything a loop needs to resume from the crash boundary.

    ``queue``/``metrics`` are fresh objects the resumed loop owns;
    tracer/overload/admission/engine state is applied *into* the
    caller-held shared objects via :meth:`apply_shared` (loops keep
    using ``self.trace`` / ``self.admission`` untouched).
    """

    step: int
    now: float
    next_arrival: int
    rejected_before: int
    queue: RequestQueue
    metrics: ServingMetrics
    tracer: Optional[dict] = None
    overload: Optional[dict] = None
    admission: Optional[tuple] = None
    idle: Optional[list] = None
    running: Optional[list] = None
    iteration: Optional[int] = None
    rng_state: Optional[dict] = None
    engine_cursors: Optional[tuple] = None
    health: Optional[dict] = None
    tenancy: Optional[dict] = None
    extra: dict = field(default_factory=dict)
    snapshot_seq: int = 0
    replayed_records: int = 0
    voided_records: int = 0
    # (request, submit_time) pairs recovered from write-ahead enqueues.
    recovered: list = field(default_factory=list)

    # ------------------------------------------------------------------ #

    def apply_shared(
        self,
        *,
        tracer: Any = None,
        overload: Any = None,
        admission: Any = None,
        engines: Any = (),
        health: Any = None,
        tenancy: Any = None,
    ) -> None:
        """Copy restored state in place into the caller-held objects."""
        if (
            tracer is not None
            and self.tracer is not None
            and hasattr(tracer, "events")
        ):
            t = self.tracer
            tracer.events.clear()
            tracer.events.update(
                {rid: list(evs) for rid, evs in t["events"].items()}
            )
            tracer.batches[:] = t["batches"]
            tracer.decisions[:] = t["decisions"]
            tracer.overload_events[:] = t["overload_events"]
            if hasattr(tracer, "durability_events"):
                tracer.durability_events[:] = t["durability_events"]
            if hasattr(tracer, "health_events"):
                tracer.health_events[:] = t.get("health_events", [])
            if hasattr(tracer, "tenant_events"):
                tracer.tenant_events[:] = t.get("tenant_events", [])
            tracer._outcome.clear()
            tracer._outcome.update(t["outcome"])
            tracer.duplicate_terminals = t["duplicate_terminals"]
            tracer.attempts.clear()
            tracer.attempts.update(t["attempts"])
        if overload is not None and self.overload is not None:
            o = self.overload
            overload.level = o["level"]
            overload.transitions[:] = o["transitions"]
            overload.shed_total = o["shed_total"]
            overload.denied = o["denied"]
            overload._outcomes.clear()
            overload._outcomes.extend(o["outcomes"])
            overload._breakers.clear()
            overload._breakers.update(copy.deepcopy(o["breakers"]))
            if o["shedder_decision"] is not None:
                overload._shedder._decision = o["shedder_decision"]
        if admission is not None and self.admission is not None:
            tokens, rejected = self.admission
            admission._queued_tokens = tokens
            admission.rejected[:] = list(rejected)
        if engines and self.engine_cursors is not None:
            for engine, cursors in zip(engines, self.engine_cursors):
                if cursors is None or not hasattr(engine, "serve_calls"):
                    continue
                engine.serve_calls = cursors[0]
                engine.straggler_events = cursors[1]
                engine.down_until = cursors[2]
        if health is not None and self.health is not None:
            health.apply_state(copy.deepcopy(self.health))
        if tenancy is not None and self.tenancy is not None:
            tenancy.apply_state(copy.deepcopy(self.tenancy))


def restore_state(
    journal: Journal, *, recover_enqueues: bool = False
) -> RestoredState:
    """Latest snapshot + committed-record replay → :class:`RestoredState`.

    Repeatable: every call deep-copies the snapshot payloads, so
    restoring twice from the same journal yields two independent,
    identical states.
    """
    snap = journal.latest_snapshot
    if snap is None:
        raise ValueError("cannot restore: journal holds no snapshot")

    queue: RequestQueue = copy.deepcopy(snap.queue)
    metrics: ServingMetrics = copy.deepcopy(snap.metrics)
    tstate = copy.deepcopy(snap.tracer)
    ovstate = copy.deepcopy(snap.overload)
    admission = (
        None
        if snap.admission is None
        else (snap.admission[0], list(snap.admission[1]))
    )
    idle = None if snap.idle is None else list(snap.idle)
    running = None if snap.running is None else list(snap.running)
    iteration = snap.iteration
    rng_state = copy.deepcopy(snap.rng_state)
    engine_cursors = snap.engine_cursors
    hstate = copy.deepcopy(snap.health)
    tnstate = copy.deepcopy(snap.tenancy)
    extra = copy.deepcopy(snap.extra)
    now = snap.now
    next_arrival = snap.next_arrival
    rejected_before = snap.rejected_before
    step = snap.step

    replayed = 0
    for rec in journal.committed_records(snap.step):
        replayed += 1
        if isinstance(rec, EnqueueRecord):
            rid = rec.request.request_id
            if rid not in queue and rid not in queue.served_ids:
                queue.add(rec.request)
        elif isinstance(rec, DispatchRecord):
            if rec.resident:
                queue.remove_served(
                    [r for r in rec.requests if r.request_id in queue]
                )
        elif isinstance(rec, TerminalRecord):
            if rec.terminal == "served":
                if rec.dequeue:
                    queue.remove_served(
                        [r for r in rec.requests if r.request_id in queue]
                    )
                for r in rec.requests:
                    metrics.finish_times[r.request_id] = (
                        r.arrival,
                        rec.finish if rec.finish is not None else now,
                    )
                metrics.served.extend(rec.requests)
            elif rec.terminal == "expired":
                if rec.dequeue:
                    # Mid-run expiry: back into queue.expired, folded
                    # into metrics at end of run — same as live.
                    queue.drop(list(rec.requests))
                else:
                    # End-of-run sweep of never-queued leftovers.
                    metrics.expired.extend(rec.requests)
            elif rec.terminal == "abandoned":
                queue.abandon(list(rec.requests))
            elif rec.terminal == "rejected":
                metrics.rejected.extend(rec.requests)
        elif isinstance(rec, RequeueRecord):
            for rid, count in rec.attempts:
                queue.attempts[rid] = count
            if rec.readd:
                queue.requeue(list(rec.retained))
        elif isinstance(rec, ShedRecord):
            # shed_requests bumps metrics.shed incrementally; the next
            # commit overwrites it with the absolute recorded value.
            shed_requests(queue, metrics, list(rec.requests), now)
        elif isinstance(rec, HedgeRecord):
            # Audit-only: the winner's dispatch/terminal records carry
            # every queue and ledger effect, and hedge counters are
            # restored absolutely at each commit — replaying the race
            # twice is impossible by construction (exactly-once).
            pass
        elif isinstance(rec, CommitRecord):
            st = rec.state
            now = st.now
            next_arrival = st.next_arrival
            metrics.arrived = st.arrived
            metrics.total_engine_time = st.engine_time
            metrics.total_scheduler_time = st.scheduler_time
            metrics.num_batches = st.num_batches
            metrics.useful_tokens = st.useful_tokens
            metrics.padded_tokens = st.padded_tokens
            metrics.retries = st.retries
            metrics.failed_batches = st.failed_batches
            metrics.downtime = st.downtime
            metrics.shed = st.shed
            metrics.hedges = st.hedges
            metrics.hedge_wins = st.hedge_wins
            metrics.hedge_wasted = st.hedge_wasted
            _apply_tracer_delta(tstate, st.tracer_delta)
            if admission is not None:
                admission[1].extend(st.admission_rejected)
                if st.admission_tokens is not None:
                    admission = (st.admission_tokens, admission[1])
            if st.overload is not None:
                ovstate = copy.deepcopy(st.overload)
            if st.idle is not None:
                idle = list(st.idle)
            if st.running is not None:
                running = list(st.running)
            if st.iteration is not None:
                iteration = st.iteration
            if st.rng_state is not None:
                rng_state = copy.deepcopy(st.rng_state)
            if st.engine_cursors is not None:
                engine_cursors = st.engine_cursors
            if st.health is not None:
                hstate = copy.deepcopy(st.health)
            if st.tenancy is not None:
                tnstate = copy.deepcopy(st.tenancy)
            if st.extra:
                extra.update(copy.deepcopy(st.extra))
            step = rec.step + 1

    recovered: list = []
    if recover_enqueues:
        for enq in journal.uncommitted_enqueues():
            rid = enq.request.request_id
            if rid in queue or rid in queue.served_ids:
                continue
            queue.add(enq.request)
            # A write-ahead enqueue was acknowledged to its client: it
            # exists, so it re-enters the arrived denominator.
            metrics.arrived += 1
            recovered.append((enq.request, enq.submit_time))

    return RestoredState(
        step=step,
        now=now,
        next_arrival=next_arrival,
        rejected_before=rejected_before,
        queue=queue,
        metrics=metrics,
        tracer=tstate,
        overload=ovstate,
        admission=admission,
        idle=idle,
        running=running,
        iteration=iteration,
        rng_state=rng_state,
        engine_cursors=engine_cursors,
        health=hstate,
        tenancy=tnstate,
        extra=extra,
        snapshot_seq=snap.seq,
        replayed_records=replayed,
        voided_records=len(journal.uncommitted_records()),
        recovered=recovered,
    )
