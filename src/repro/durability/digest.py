"""Canonical digests for crash/restore differential comparison.

The tentpole correctness claim — crash-at-any-step + restore reproduces
the uninterrupted run *bit-for-bit* per seed — is checked by comparing
these digests, which lower ledger/trace/queue state to plain nested
structures safe to compare with ``==`` and to serialise into the CI
differential report.

Wall-clock quantities are excluded by construction:
``ServingMetrics.total_scheduler_time`` and ``SchedulerEvent.runtime``
measure *host* time (the Fig. 16 quantities, TCB003-waived at their
source), so two otherwise identical runs legitimately differ there.
:func:`state_digest` — used only for the plane's *internal*
replay-verification, where the replayed value is recorded absolutely at
each commit — is the one digest that includes scheduler time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduling.queue import RequestQueue
    from repro.serving.metrics import ServingMetrics

__all__ = ["digest_diff", "ledger_digest", "state_digest", "trace_digest"]


def ledger_digest(metrics: "ServingMetrics") -> dict[str, Any]:
    """The terminal ledger as a comparable structure (order-sensitive).

    Excludes ``total_scheduler_time`` (wall clock); everything else —
    including list order, which the journal replay must reproduce — is
    part of the bit-for-bit claim.
    """
    return {
        "served": [r.request_id for r in metrics.served],
        "expired": [r.request_id for r in metrics.expired],
        "rejected": [r.request_id for r in metrics.rejected],
        "abandoned": [r.request_id for r in metrics.abandoned],
        "finish_times": sorted(metrics.finish_times.items()),
        "arrived": metrics.arrived,
        "retries": metrics.retries,
        "failed_batches": metrics.failed_batches,
        "downtime": metrics.downtime,
        "shed": metrics.shed,
        "hedges": getattr(metrics, "hedges", 0),
        "hedge_wins": getattr(metrics, "hedge_wins", 0),
        "hedge_wasted": getattr(metrics, "hedge_wasted", 0.0),
        "engine_time": metrics.total_engine_time,
        "num_batches": metrics.num_batches,
        "useful_tokens": metrics.useful_tokens,
        "padded_tokens": metrics.padded_tokens,
        "horizon": metrics.horizon,
    }


def trace_digest(tracer: Any) -> Optional[dict[str, Any]]:
    """The tracer's observable state, wall-clock-free (None if untraced).

    ``SchedulerEvent.runtime`` is dropped; durability events are
    excluded too — the crashed+restored run legitimately carries
    snapshot/restore spans the uninterrupted run does not.
    """
    if tracer is None or not getattr(tracer, "enabled", False):
        return None
    if not hasattr(tracer, "events"):
        return None
    return {
        "events": {
            rid: [(ev.kind.value, ev.t, dict(ev.attrs)) for ev in evs]
            for rid, evs in tracer.events.items()
        },
        "batches": [
            (b.t_start, b.duration, b.engine, b.kind, dict(b.attrs))
            for b in tracer.batches
        ],
        "decisions": [(d.t, dict(d.attrs)) for d in tracer.decisions],
        "overload": [
            (e.t, e.kind, dict(e.attrs)) for e in tracer.overload_events
        ],
        "health": [
            (e.t, e.kind, dict(e.attrs))
            for e in getattr(tracer, "health_events", [])
        ],
        "tenant": [
            (e.t, e.kind, dict(e.attrs))
            for e in getattr(tracer, "tenant_events", [])
        ],
        "outcomes": dict(tracer._outcome),
        "duplicates": tracer.duplicate_terminals,
        "attempts": dict(tracer.attempts),
    }


def state_digest(
    queue: "RequestQueue",
    metrics: "ServingMetrics",
    *,
    now: float,
    next_arrival: int,
) -> dict[str, Any]:
    """Full live-state fingerprint for internal replay verification.

    Includes scheduler time: the replayed value comes from the commit
    records (recorded absolutely), so replay-vs-live must match even
    though run-vs-run would not.
    """
    return {
        "now": now,
        "next_arrival": next_arrival,
        "waiting": queue.waiting_ids(),
        "queued_tokens": queue.queued_tokens,
        "attempts": dict(queue.attempts),
        "served_ids": sorted(queue.served_ids),
        "queue_expired": [r.request_id for r in queue.expired],
        "queue_abandoned": [r.request_id for r in queue.abandoned],
        "scheduler_time": metrics.total_scheduler_time,
        "ledger": ledger_digest(metrics),
    }


def digest_diff(a: Any, b: Any, prefix: str = "") -> list[str]:
    """Human-readable paths where two digests differ (for the report)."""
    if isinstance(a, dict) and isinstance(b, dict):
        out: list[str] = []
        for key in sorted(set(a) | set(b), key=str):
            pa, pb = a.get(key), b.get(key)
            if pa != pb:
                out.extend(digest_diff(pa, pb, f"{prefix}{key}."))
        return out
    if a != b:
        return [f"{prefix.rstrip('.')}: {a!r} != {b!r}"]
    return []
