"""Write-ahead journal: ordered records + periodic snapshots.

The journal is the durability plane's single source of truth: mutation
records are appended in execution order, a :class:`CommitRecord` seals
each completed step, and full :class:`~repro.durability.snapshot.Snapshot`
checkpoints bound how much journal a restore has to replay.

A step is **committed** once its commit record lands; records of a step
with no commit are the trailing debris of a crash.  :meth:`Journal.audit`
turns the record stream into the exactly-once ledger the tests pin: no
request id may appear in more than one terminal record, and every
enqueue must resolve to at most one terminal.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterator, Optional

from repro.durability.records import (
    CommitRecord,
    EnqueueRecord,
    JournalRecord,
    TerminalRecord,
    record_from_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durability.snapshot import Snapshot

__all__ = ["Journal", "records_from_jsonl"]


class Journal:
    """Append-only record log with interleaved snapshots."""

    def __init__(self) -> None:
        self.records: list[JournalRecord] = []
        self.snapshots: list["Snapshot"] = []

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #

    def append(self, record: JournalRecord) -> None:
        self.records.append(record)

    def add_snapshot(self, snapshot: "Snapshot") -> None:
        self.snapshots.append(snapshot)

    def clear(self) -> None:
        self.records.clear()
        self.snapshots.clear()

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #

    @property
    def latest_snapshot(self) -> Optional["Snapshot"]:
        return self.snapshots[-1] if self.snapshots else None

    def committed_steps(self) -> set[int]:
        """Steps sealed by a commit record."""
        return {
            r.step for r in self.records if isinstance(r, CommitRecord)
        }

    def last_committed_step(self) -> Optional[int]:
        committed = self.committed_steps()
        return max(committed) if committed else None

    def committed_records(self, from_step: int) -> Iterator[JournalRecord]:
        """Records of committed steps ``>= from_step``, in journal order."""
        committed = self.committed_steps()
        for rec in self.records:
            if rec.step >= from_step and rec.step in committed:
                yield rec

    def uncommitted_records(self) -> list[JournalRecord]:
        """Trailing records of steps a crash left unsealed."""
        committed = self.committed_steps()
        return [r for r in self.records if r.step not in committed]

    def uncommitted_enqueues(self) -> list[EnqueueRecord]:
        """Write-ahead enqueues awaiting recovery (server restores)."""
        return [
            r
            for r in self.uncommitted_records()
            if isinstance(r, EnqueueRecord)
        ]

    def prune_uncommitted(self) -> list[JournalRecord]:
        """Void the crashed step's trailing records; returns them.

        Called at resume so a re-run step's fresh records can never be
        confused with the dead ones it replaces (they share a step
        number, and the new step's commit would otherwise retroactively
        seal the old debris).
        """
        committed = self.committed_steps()
        voided = [r for r in self.records if r.step not in committed]
        if voided:
            self.records = [
                r for r in self.records if r.step in committed
            ]
        return voided

    # ------------------------------------------------------------------ #
    # Exactly-once audit
    # ------------------------------------------------------------------ #

    def audit(self) -> dict:
        """Exactly-once accounting over the whole record stream.

        Returns per-terminal-kind counts, the set of enqueued ids, and
        ``duplicate_terminals`` — ids appearing in more than one
        terminal record, which must be empty for a well-formed journal
        (rejected-at-admission requests legitimately carry a terminal
        with no enqueue; the reverse — an enqueue with two terminals —
        is double accounting).
        """
        terminal_of: dict[int, str] = {}
        duplicates: list[int] = []
        counts = {"served": 0, "expired": 0, "rejected": 0, "abandoned": 0}
        enqueued: set[int] = set()
        for rec in self.records:
            if isinstance(rec, EnqueueRecord):
                enqueued.add(rec.request.request_id)
            elif isinstance(rec, TerminalRecord):
                counts[rec.terminal] += len(rec.requests)
                for r in rec.requests:
                    if r.request_id in terminal_of:
                        duplicates.append(r.request_id)
                    else:
                        terminal_of[r.request_id] = rec.terminal
        return {
            "terminals": counts,
            "unique_terminals": len(terminal_of),
            "enqueued": len(enqueued),
            "duplicate_terminals": sorted(set(duplicates)),
            "records": len(self.records),
            "snapshots": len(self.snapshots),
            "committed_steps": len(self.committed_steps()),
        }

    # ------------------------------------------------------------------ #
    # Report export
    # ------------------------------------------------------------------ #

    def to_jsonl(self) -> str:
        """One JSON object per record (the CI differential artifact)."""
        return "\n".join(
            json.dumps(rec.to_dict(), sort_keys=True) for rec in self.records
        )

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Journal(records={len(self.records)}, "
            f"snapshots={len(self.snapshots)}, "
            f"committed={len(self.committed_steps())})"
        )


def records_from_jsonl(text: str) -> list[JournalRecord]:
    """Rebuild mutation records from a JSONL export (commits excluded).

    The inverse of :meth:`Journal.to_jsonl` for the five mutation
    kinds; commit records carry in-memory-only state and are skipped.
    """
    out: list[JournalRecord] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        d = json.loads(line)
        if d.get("kind") == "commit":
            continue
        out.append(record_from_dict(d))
    return out
