"""Crash-consistent serving: snapshot/journal durability plane.

A deterministic, sim-clock-pure checkpoint/restore layer for the
serving loops (see ``docs/recovery.md``):

- :class:`~repro.durability.snapshot.Snapshot` — deep checkpoint of the
  full serving state at a step boundary,
- :class:`~repro.durability.journal.Journal` — write-ahead log of typed
  replay-idempotent mutation records between snapshots,
- :class:`~repro.durability.plane.DurabilityPlane` — the per-run
  orchestrator the loops call (``durability=`` keyword; inert when
  absent, all-default runs are bit-identical to no plane at all),
- :func:`~repro.durability.restore.restore_state` — latest snapshot +
  committed replay → a resumable state, voiding the crashed step's
  trailing records and (in server mode) recovering acknowledged
  write-ahead enqueues with duplicate suppression.
"""

from repro.durability.digest import (
    digest_diff,
    ledger_digest,
    state_digest,
    trace_digest,
)
from repro.durability.journal import Journal, records_from_jsonl
from repro.durability.plane import DurabilityConfig, DurabilityPlane
from repro.durability.records import (
    TERMINAL_RECORD_KINDS,
    CommitRecord,
    DispatchRecord,
    EnqueueRecord,
    JournalRecord,
    RequeueRecord,
    ShedRecord,
    StepState,
    TerminalRecord,
    record_from_dict,
)
from repro.durability.restore import RestoredState, restore_state
from repro.durability.snapshot import LiveState, Snapshot

__all__ = [
    "TERMINAL_RECORD_KINDS",
    "CommitRecord",
    "DispatchRecord",
    "DurabilityConfig",
    "DurabilityPlane",
    "EnqueueRecord",
    "Journal",
    "JournalRecord",
    "LiveState",
    "RequeueRecord",
    "RestoredState",
    "ShedRecord",
    "Snapshot",
    "StepState",
    "TerminalRecord",
    "digest_diff",
    "ledger_digest",
    "record_from_dict",
    "records_from_jsonl",
    "restore_state",
    "state_digest",
    "trace_digest",
]
