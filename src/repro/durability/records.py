"""Typed journal records: the write-ahead vocabulary of the durability plane.

Every serving-state mutation that matters for crash recovery is lowered
to one of five record kinds — **enqueue**, **dispatch**, **terminal**,
**requeue**, **shed** — plus a per-step **commit** that seals the step
and carries the small absolute state (clock, counters, cursors) replay
cannot derive from the mutation records alone.

Records are *replay-idempotent by construction*: applying the committed
prefix of a journal to its base snapshot always yields the same state,
because list-valued state is rebuilt by appending records in journal
order while scalar state is written as absolute values at each commit
(never as increments).  Requests ride in the records as the frozen
value objects themselves, so a replayed queue holds requests that
compare (and hash) equal to the originals.

The dict/JSONL forms exist for the crash/restore differential report:
mutation records round-trip exactly; a :class:`CommitRecord` lowers to
a JSON-safe summary of its :class:`StepState` (the in-memory journal
keeps the full state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.types import Request

__all__ = [
    "TERMINAL_RECORD_KINDS",
    "JournalRecord",
    "EnqueueRecord",
    "DispatchRecord",
    "TerminalRecord",
    "RequeueRecord",
    "ShedRecord",
    "HedgeRecord",
    "StepState",
    "CommitRecord",
    "record_from_dict",
]

# Terminal record kinds mirror the ServingMetrics conservation buckets.
TERMINAL_RECORD_KINDS = frozenset(
    {"served", "expired", "rejected", "abandoned"}
)


def _request_to_dict(r: Request) -> dict[str, Any]:
    return {
        "request_id": r.request_id,
        "length": r.length,
        "arrival": r.arrival,
        "deadline": r.deadline,
        "tokens": None if r.tokens is None else list(r.tokens),
        "weight": r.weight,
        "tenant": r.tenant,
    }


def _request_from_dict(d: Mapping[str, Any]) -> Request:
    return Request(
        request_id=int(d["request_id"]),
        length=int(d["length"]),
        arrival=float(d["arrival"]),
        deadline=float(d["deadline"]),
        tokens=(
            None
            if d.get("tokens") is None
            else tuple(int(t) for t in d["tokens"])
        ),
        weight=float(d["weight"]),
        tenant=d.get("tenant"),
    )


@dataclass(frozen=True)
class JournalRecord:
    """Base record: every record belongs to exactly one serving step."""

    step: int

    kind: str = field(default="base", init=False)

    def to_dict(self) -> dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class EnqueueRecord(JournalRecord):
    """A request entered the wait queue (admitted arrival or submit).

    Carries the full request payload so a server restore can rebuild
    requests that exist nowhere else (online submits have no workload
    list to resolve ids against).  ``submit_time`` is the online
    server's submit clock; simulator loops leave it ``None``.
    """

    request: Request = None  # type: ignore[assignment]
    submit_time: Optional[float] = None

    kind: str = field(default="enqueue", init=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "step": self.step,
            "request": _request_to_dict(self.request),
            "submit_time": self.submit_time,
        }


@dataclass(frozen=True)
class DispatchRecord(JournalRecord):
    """Write-ahead: requests were handed to an engine slot.

    Journalled *before* the engine call, so a crash between dispatch and
    completion leaves a trailing uncommitted dispatch — which restore
    voids (the requests stay queued in the restored state and are
    re-dispatched, consuming the same fault-plan events).  ``resident``
    marks iteration-level admission, where dispatch removes the
    requests from the wait queue into the resident batch; batch-level
    dispatch leaves the queue untouched until success.
    """

    requests: tuple[Request, ...] = ()
    engine: int = 0
    resident: bool = False

    kind: str = field(default="dispatch", init=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "step": self.step,
            "request_ids": [r.request_id for r in self.requests],
            "requests": [_request_to_dict(r) for r in self.requests],
            "engine": self.engine,
            "resident": self.resident,
        }


@dataclass(frozen=True)
class TerminalRecord(JournalRecord):
    """Requests reached a conservation bucket: served/expired/rejected/abandoned.

    ``finish`` is the simulated completion time (served only).
    ``dequeue`` says whether the terminal also removed the requests from
    the wait queue (batch-level serves do; iteration-level serves
    dequeued at dispatch time, so their terminals touch only metrics).
    """

    terminal: str = "expired"
    requests: tuple[Request, ...] = ()
    finish: Optional[float] = None
    dequeue: bool = True

    kind: str = field(default="terminal", init=False)

    def __post_init__(self) -> None:
        if self.terminal not in TERMINAL_RECORD_KINDS:
            raise ValueError(f"unknown terminal kind {self.terminal!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "step": self.step,
            "terminal": self.terminal,
            "requests": [_request_to_dict(r) for r in self.requests],
            "finish": self.finish,
            "dequeue": self.dequeue,
        }


@dataclass(frozen=True)
class RequeueRecord(JournalRecord):
    """A failed batch went through attempt accounting and requeue.

    ``attempts`` holds the post-bump absolute attempt count per failed
    request (absolute, so replay never double-increments); ``retained``
    are the requests the retry policy kept.  ``readd`` marks the
    iteration-level flavour where retained requests must re-enter the
    wait queue (batch-level retained requests never left it).
    Abandoned casualties are journalled separately as terminal records.
    """

    attempts: tuple[tuple[int, int], ...] = ()
    retained: tuple[Request, ...] = ()
    readd: bool = False

    kind: str = field(default="requeue", init=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "step": self.step,
            "attempts": [list(pair) for pair in self.attempts],
            "retained": [_request_to_dict(r) for r in self.retained],
            "readd": self.readd,
        }


@dataclass(frozen=True)
class ShedRecord(JournalRecord):
    """Load shedding took queued requests into the rejected bucket."""

    requests: tuple[Request, ...] = ()

    kind: str = field(default="shed", init=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "step": self.step,
            "requests": [_request_to_dict(r) for r in self.requests],
        }


@dataclass(frozen=True)
class HedgeRecord(JournalRecord):
    """A hedged dispatch resolved: which copy won, what the loser cost.

    Pure audit record — queue and ledger effects of a hedge ride in the
    winner's ordinary dispatch/terminal records, so replaying a hedge
    is a structural no-op (exactly-once by construction).  It exists so
    a warm restart's journal tells the same hedging story the crashed
    run would have, and so the differential report can name every race.
    """

    requests: tuple[Request, ...] = ()
    primary: int = 0
    target: int = 0
    deadline: float = 0.0
    outcome: str = "lose"  # win | lose | failed
    winner_finish: float = 0.0

    kind: str = field(default="hedge", init=False)

    def __post_init__(self) -> None:
        if self.outcome not in ("win", "lose", "failed"):
            raise ValueError(f"unknown hedge outcome {self.outcome!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "step": self.step,
            "request_ids": [r.request_id for r in self.requests],
            "requests": [_request_to_dict(r) for r in self.requests],
            "primary": self.primary,
            "target": self.target,
            "deadline": self.deadline,
            "outcome": self.outcome,
            "winner_finish": self.winner_finish,
        }


@dataclass
class StepState:
    """Absolute small state sealed into a step's commit.

    Everything here is cheap to copy per step and impossible to derive
    from the mutation records: the simulated clock, the arrival cursor,
    metric counters (absolute values — note ``scheduler_time`` is
    wall-clock, which is exactly why it must be *recorded* rather than
    re-measured on replay), per-loop structures (cluster idle heap,
    iteration-level residents, RNG cursor), fault-engine cursors, and
    the per-step deltas of grow-only side state (tracer emissions,
    admission rejections, finished responses).
    """

    now: float = 0.0
    next_arrival: int = 0
    arrived: int = 0
    engine_time: float = 0.0
    scheduler_time: float = 0.0
    num_batches: int = 0
    useful_tokens: int = 0
    padded_tokens: int = 0
    retries: int = 0
    failed_batches: int = 0
    downtime: float = 0.0
    shed: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    hedge_wasted: float = 0.0
    # Per-step deltas of grow-only state.
    tracer_delta: tuple = ()
    admission_rejected: tuple[Request, ...] = ()
    # Absolute shared-controller state (None when absent from the run).
    admission_tokens: Optional[int] = None
    overload: Optional[Any] = None  # deep-copied OverloadController
    # Per-loop absolute structures (None when the loop has no such state).
    idle: Optional[tuple] = None  # cluster (idle_at, tiebreak, engine) heap
    running: Optional[tuple] = None  # iteration-level (request, remaining)
    iteration: Optional[int] = None
    rng_state: Optional[dict] = None
    engine_cursors: Optional[tuple] = None  # (serve_calls, stragglers, down_until)
    # Tail-tolerance plane state (None when the run carries no plane).
    health: Optional[dict] = None
    # Tenancy plane state (None when the run carries no plane).
    tenancy: Optional[dict] = None
    # Loop-specific extras (e.g. the online server's new responses).
    extra: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        """JSON-safe projection for the differential report."""
        return {
            "now": self.now,
            "next_arrival": self.next_arrival,
            "arrived": self.arrived,
            "engine_time": self.engine_time,
            "scheduler_time": self.scheduler_time,
            "num_batches": self.num_batches,
            "useful_tokens": self.useful_tokens,
            "padded_tokens": self.padded_tokens,
            "retries": self.retries,
            "failed_batches": self.failed_batches,
            "downtime": self.downtime,
            "shed": self.shed,
            "tracer_delta": len(self.tracer_delta),
            "admission_rejected": [
                r.request_id for r in self.admission_rejected
            ],
            "iteration": self.iteration,
        }


@dataclass(frozen=True)
class CommitRecord(JournalRecord):
    """Seals one step: every record of this step is now durable.

    Records of a step with no commit are *uncommitted* — a crash left
    them trailing — and restore ignores them (except write-ahead
    enqueues in server mode, which are client-acknowledged and must be
    recovered).
    """

    state: StepState = field(default_factory=StepState)

    kind: str = field(default="commit", init=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "step": self.step,
            "state": self.state.summary(),
        }


_MUTATION_KINDS = {
    "enqueue": EnqueueRecord,
    "dispatch": DispatchRecord,
    "terminal": TerminalRecord,
    "requeue": RequeueRecord,
    "shed": ShedRecord,
    "hedge": HedgeRecord,
}


def record_from_dict(d: Mapping[str, Any]) -> JournalRecord:
    """Rebuild a mutation record from its dict form (JSONL ingest).

    Commit records do not round-trip (their full state is in-memory
    only); ingesting one raises so a truncated report cannot silently
    masquerade as a replayable journal.
    """
    kind = d.get("kind")
    step = int(d["step"])
    if kind == "enqueue":
        return EnqueueRecord(
            step=step,
            request=_request_from_dict(d["request"]),
            submit_time=d.get("submit_time"),
        )
    if kind == "dispatch":
        return DispatchRecord(
            step=step,
            requests=tuple(_request_from_dict(r) for r in d["requests"]),
            engine=int(d.get("engine", 0)),
            resident=bool(d.get("resident", False)),
        )
    if kind == "terminal":
        return TerminalRecord(
            step=step,
            terminal=str(d["terminal"]),
            requests=tuple(_request_from_dict(r) for r in d["requests"]),
            finish=d.get("finish"),
            dequeue=bool(d.get("dequeue", True)),
        )
    if kind == "requeue":
        return RequeueRecord(
            step=step,
            attempts=tuple((int(a), int(b)) for a, b in d["attempts"]),
            retained=tuple(_request_from_dict(r) for r in d["retained"]),
            readd=bool(d.get("readd", False)),
        )
    if kind == "shed":
        return ShedRecord(
            step=step,
            requests=tuple(_request_from_dict(r) for r in d["requests"]),
        )
    if kind == "hedge":
        return HedgeRecord(
            step=step,
            requests=tuple(_request_from_dict(r) for r in d["requests"]),
            primary=int(d.get("primary", 0)),
            target=int(d.get("target", 0)),
            deadline=float(d.get("deadline", 0.0)),
            outcome=str(d.get("outcome", "lose")),
            winner_finish=float(d.get("winner_finish", 0.0)),
        )
    raise ValueError(f"cannot rebuild journal record of kind {kind!r}")
