"""The durability plane: write-ahead journaling + periodic snapshots.

One :class:`DurabilityPlane` per serving run (or per
:class:`~repro.serving.server.TCBServer` lifetime) receives the loop's
semantic mutations — enqueue, dispatch, terminal, requeue, shed — as
typed journal records, seals each completed step with a commit record
carrying the small absolute state, and takes a full deep
:class:`~repro.durability.snapshot.Snapshot` every
``checkpoint_every`` steps.  Everything runs on the simulated clock
(``repro/durability`` is inside tcblint TCB003's scope) and the plane
is pure bookkeeping: with ``durability=None`` the loops take exactly
their pre-durability paths, bit-identical to today.

The plane is also where a planned
:class:`~repro.faults.plan.SchedulerCrash` fires: at the configured
step it raises :class:`~repro.faults.plan.SchedulerCrashed` out of the
serving loop, leaving the journal holding a committed prefix plus the
crashed step's trailing records.  :meth:`restore` rebuilds a
:class:`~repro.durability.restore.RestoredState` from the latest
snapshot + committed replay; passing it back into the loop's ``run(...,
resume=)`` resumes at the crash boundary and must reproduce the
uninterrupted run's terminal ledger bit-for-bit.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.durability.digest import digest_diff, state_digest
from repro.durability.journal import Journal
from repro.durability.records import (
    CommitRecord,
    DispatchRecord,
    EnqueueRecord,
    HedgeRecord,
    RequeueRecord,
    ShedRecord,
    StepState,
    TerminalRecord,
)
from repro.durability.restore import RestoredState, restore_state
from repro.durability.snapshot import (
    LiveState,
    Snapshot,
    capture_engine_cursors,
    health_state,
    overload_state,
    tenancy_state,
)
from repro.faults.plan import SchedulerCrash, SchedulerCrashed
from repro.types import Request

__all__ = ["DurabilityConfig", "DurabilityPlane"]


@dataclass(frozen=True)
class DurabilityConfig:
    """What the plane does per run.

    ``checkpoint_every`` is the snapshot cadence in serving steps; 0
    keeps only the genesis snapshot (restore then replays the whole
    committed journal).  ``crash`` arms a planned scheduler crash;
    ``verify_replay`` re-restores at every snapshot boundary and
    asserts the replayed state matches the live state exactly (the
    plane auditing itself — expensive, test-only).
    """

    checkpoint_every: int = 0
    crash: Optional[SchedulerCrash] = None
    verify_replay: bool = False

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )


class DurabilityPlane:
    """Journal writer + snapshot taker + planned-crash trigger."""

    def __init__(
        self,
        config: Optional[DurabilityConfig] = None,
        *,
        journal: Optional[Journal] = None,
    ):
        self.config = config or DurabilityConfig()
        self.journal = journal or Journal()
        self._step = 0
        self._pending = False
        self._crash_fired = False
        self._capture: Optional[Callable[[], LiveState]] = None
        self._tracer: Any = None
        self._sink: list = []
        self._admission_seen = 0
        self._ended = False
        # Records a crash left trailing, pruned at resume (kept for the
        # differential report).
        self.voided: list = []

    # ------------------------------------------------------------------ #
    # Run lifecycle
    # ------------------------------------------------------------------ #

    @property
    def step(self) -> int:
        """The step index currently executing (or about to)."""
        return self._step

    def begin_run(
        self,
        capture: Callable[[], LiveState],
        tracer: Any = None,
        *,
        resume: Optional[RestoredState] = None,
    ) -> None:
        """Arm the plane for one run; take the genesis/restart snapshot.

        On resume the journal is kept (minus the crashed step's voided
        trailing records), the crash is disarmed, and a fresh restart
        snapshot bounds the next restore's replay.
        """
        self._capture = capture
        self._tracer = (
            tracer
            if tracer is not None
            and getattr(tracer, "enabled", False)
            and hasattr(tracer, "sink")
            else None
        )
        self._sink = []
        if self._tracer is not None:
            self._tracer.sink = self._sink
        if resume is None:
            self.journal.clear()
            self.voided = []
            self._step = 0
            self._crash_fired = False
        else:
            self.voided = self.journal.prune_uncommitted()
            self._step = resume.step
            self._crash_fired = True  # a restored run does not re-crash
        self._ended = False
        self._pending = False
        live = self._live()
        self._admission_seen = (
            len(live.admission.rejected) if live.admission is not None else 0
        )
        snap = self._snapshot(live)
        if self._tracer is not None:
            if resume is None:
                self._tracer.durability(
                    live.now, "snapshot", seq=snap.seq, step=snap.step,
                    genesis=True,
                )
            else:
                self._tracer.durability(
                    live.now,
                    "restore",
                    step=resume.step,
                    from_seq=resume.snapshot_seq,
                    replayed=resume.replayed_records,
                    voided=len(self.voided),
                    recovered=len(resume.recovered),
                )

    def tick(self) -> None:
        """Step boundary: commit the finished step, snapshot if due.

        Call as the first statement of every loop iteration.  The
        planned ``phase="step"`` crash fires here, after the previous
        step committed — so the journal a restore sees is exactly the
        committed prefix.
        """
        live = self._live()
        if self._pending:
            self._commit(live)
            self._step += 1
            every = self.config.checkpoint_every
            if every > 0 and self._step % every == 0:
                if self.config.verify_replay:
                    self._verify_replay(live)
                snap = self._snapshot(live)
                if self._tracer is not None:
                    self._tracer.durability(
                        live.now, "snapshot", seq=snap.seq, step=snap.step,
                    )
        self._maybe_crash("step", live.now)
        self._pending = True

    def end_run(self, leftover: Sequence[Request] = ()) -> None:
        """Seal the final step (+ the end-of-run sweep's records)."""
        live = self._live()
        if leftover:
            self.journal.append(
                TerminalRecord(
                    step=self._step,
                    terminal="expired",
                    requests=tuple(leftover),
                    dequeue=False,
                )
            )
        if self._pending:
            self._commit(live)
            self._pending = False
        self._ended = True
        if self._tracer is not None:
            self._tracer.sink = None
        self._tracer = None

    def restore(self, *, recover_enqueues: bool = False) -> RestoredState:
        """Rebuild state from the latest snapshot + committed replay.

        Refuses after a clean :meth:`end_run`: the end-of-run sweep's
        terminals are already in the final ledger, and resuming a
        completed run would re-apply the sweep on top of them
        (double-counting expiries).  Only a crashed — or still-running —
        journal is restorable; use :func:`restore_state` directly to
        inspect a finished journal.
        """
        if self._ended:
            raise ValueError(
                "cannot restore: the run completed cleanly (end_run "
                "sealed the journal); resuming it would replay the "
                "end-of-run sweep on top of the final ledger"
            )
        return restore_state(
            self.journal, recover_enqueues=recover_enqueues
        )

    # ------------------------------------------------------------------ #
    # Mutation records (called by the loops at their semantic sites)
    # ------------------------------------------------------------------ #

    def enqueue(
        self, request: Request, submit_time: Optional[float] = None
    ) -> None:
        self.journal.append(
            EnqueueRecord(
                step=self._step, request=request, submit_time=submit_time
            )
        )

    def dispatch(
        self,
        requests: Sequence[Request],
        *,
        engine: int = 0,
        resident: bool = False,
    ) -> None:
        """Write-ahead: journal the batch *before* the engine runs it.

        The planned ``phase="dispatch"`` crash fires here — after the
        record lands, before any engine state advances — leaving an
        uncommitted in-flight dispatch for restore to void.
        """
        if not requests:
            return
        self.journal.append(
            DispatchRecord(
                step=self._step,
                requests=tuple(requests),
                engine=engine,
                resident=resident,
            )
        )
        self._maybe_crash("dispatch", None)

    def terminal(
        self,
        kind: str,
        requests: Sequence[Request],
        *,
        finish: Optional[float] = None,
        dequeue: bool = True,
    ) -> None:
        if not requests:
            return
        self.journal.append(
            TerminalRecord(
                step=self._step,
                terminal=kind,
                requests=tuple(requests),
                finish=finish,
                dequeue=dequeue,
            )
        )

    def served(
        self,
        requests: Sequence[Request],
        finish: float,
        *,
        dequeue: bool = True,
    ) -> None:
        self.terminal("served", requests, finish=finish, dequeue=dequeue)

    def shed(self, requests: Sequence[Request]) -> None:
        if not requests:
            return
        self.journal.append(
            ShedRecord(step=self._step, requests=tuple(requests))
        )

    def hedge(
        self,
        requests: Sequence[Request],
        *,
        primary: int,
        target: int,
        deadline: float,
        outcome: str,
        winner_finish: float,
    ) -> None:
        """Journal a resolved hedge race (audit-only; see HedgeRecord)."""
        if not requests:
            return
        self.journal.append(
            HedgeRecord(
                step=self._step,
                requests=tuple(requests),
                primary=primary,
                target=target,
                deadline=deadline,
                outcome=outcome,
                winner_finish=winner_finish,
            )
        )

    def requeued(
        self,
        queue: Any,
        failed: Sequence[Request],
        retained: Sequence[Request],
        lost: Sequence[Request],
        *,
        readd: bool = False,
    ) -> None:
        """One failed batch's triage: absolute attempts + retained set.

        Reads post-bump attempt counts from the queue so replay assigns
        them absolutely (never re-increments); abandoned casualties get
        their own terminal record.
        """
        if failed:
            self.journal.append(
                RequeueRecord(
                    step=self._step,
                    attempts=tuple(
                        (r.request_id, queue.attempts.get(r.request_id, 0))
                        for r in failed
                    ),
                    retained=tuple(retained),
                    readd=readd,
                )
            )
        self.terminal("abandoned", lost)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _live(self) -> LiveState:
        if self._capture is None:
            raise RuntimeError("durability plane used before begin_run()")
        return self._capture()

    def _snapshot(self, live: LiveState) -> Snapshot:
        snap = Snapshot.capture(
            live, seq=len(self.journal.snapshots), step=self._step
        )
        self.journal.add_snapshot(snap)
        return snap

    def _drain_sink(self) -> tuple:
        if not self._sink:
            return ()
        delta = tuple(self._sink)
        self._sink.clear()
        return delta

    def _commit(self, live: LiveState) -> None:
        m = live.metrics
        delta: tuple[Request, ...] = ()
        tokens = None
        if live.admission is not None:
            rejected = live.admission.rejected
            delta = tuple(rejected[self._admission_seen:])
            self._admission_seen = len(rejected)
            tokens = live.admission._queued_tokens
        state = StepState(
            now=live.now,
            next_arrival=live.next_arrival,
            arrived=m.arrived,
            engine_time=m.total_engine_time,
            scheduler_time=m.total_scheduler_time,
            num_batches=m.num_batches,
            useful_tokens=m.useful_tokens,
            padded_tokens=m.padded_tokens,
            retries=m.retries,
            failed_batches=m.failed_batches,
            downtime=m.downtime,
            shed=m.shed,
            hedges=m.hedges,
            hedge_wins=m.hedge_wins,
            hedge_wasted=m.hedge_wasted,
            tracer_delta=self._drain_sink(),
            admission_rejected=delta,
            admission_tokens=tokens,
            overload=overload_state(live.overload),
            idle=None if live.idle is None else tuple(live.idle),
            running=None if live.running is None else tuple(live.running),
            iteration=live.iteration,
            rng_state=(
                None
                if live.rng is None
                else copy.deepcopy(live.rng.bit_generator.state)
            ),
            engine_cursors=capture_engine_cursors(live.engines),
            health=health_state(live.health),
            tenancy=tenancy_state(live.tenancy),
            extra=dict(live.extra),
        )
        self.journal.append(CommitRecord(step=self._step, state=state))

    def _verify_replay(self, live: LiveState) -> None:
        """Restore from the previous snapshot and diff against live."""
        restored = restore_state(self.journal)
        replayed = state_digest(
            restored.queue,
            restored.metrics,
            now=restored.now,
            next_arrival=restored.next_arrival,
        )
        actual = state_digest(
            live.queue, live.metrics, now=live.now,
            next_arrival=live.next_arrival,
        )
        if replayed != actual:
            raise AssertionError(
                "journal replay diverged from live state at step "
                f"{self._step}: " + "; ".join(digest_diff(replayed, actual))
            )

    def _maybe_crash(self, phase: str, now: Optional[float]) -> None:
        crash = self.config.crash
        if (
            crash is None
            or self._crash_fired
            or crash.phase != phase
            or self._step != crash.step
        ):
            return
        self._crash_fired = True
        if self._tracer is not None:
            t = now if now is not None else self._live().now
            self._tracer.durability(
                t, "crash", step=self._step, phase=phase
            )
        raise SchedulerCrashed(self._step, phase)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DurabilityPlane(step={self._step}, "
            f"journal={self.journal!r})"
        )
