"""Snapshot: a deep, self-contained checkpoint of serving state.

A :class:`Snapshot` freezes everything a serving loop needs to restart
from a step boundary: the wait queue (contents, attempts map, terminal
ledgers), the metrics ledger, tracer spans, overload-controller and
circuit-breaker state, admission-controller pressure, per-loop
structures (cluster idle heap, iteration-level residents, RNG cursor),
and fault-engine cursors — so a restored run re-consumes the *same*
seeded fault events the crashed run would have.

Loops hand the plane a :class:`LiveState` carrier (built fresh by a
zero-argument capture closure over the loop's locals); the snapshot
deep-copies through it so later mutation of the live objects can never
reach back into a checkpoint.

Field discipline: every field annotated on :class:`Snapshot` must be
consumed by :func:`repro.durability.restore.restore_state` — and every
``snap.<field>`` read there must exist here.  tcblint TCB013 enforces
both directions, so snapshot/restore drift is a lint error, not a
latent recovery bug.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "LiveState",
    "Snapshot",
    "capture_engine_cursors",
    "health_state",
    "overload_state",
    "tenancy_state",
    "tracer_state",
]


def tracer_state(tracer: Any) -> Optional[dict]:
    """The tracer's mutable state as a plain dict (None when untraced).

    Event objects are frozen dataclasses, so shallow list copies
    suffice; the dict itself is deep-copied at snapshot time.
    """
    if tracer is None or not getattr(tracer, "enabled", False):
        return None
    if not hasattr(tracer, "events"):
        return None
    return {
        "events": {rid: list(evs) for rid, evs in tracer.events.items()},
        "batches": list(tracer.batches),
        "decisions": list(tracer.decisions),
        "overload_events": list(tracer.overload_events),
        "durability_events": list(getattr(tracer, "durability_events", [])),
        "health_events": list(getattr(tracer, "health_events", [])),
        "tenant_events": list(getattr(tracer, "tenant_events", [])),
        "outcome": dict(tracer._outcome),
        "duplicate_terminals": tracer.duplicate_terminals,
        "attempts": dict(tracer.attempts),
    }


def overload_state(ov: Any) -> Optional[dict]:
    """The overload controller's mutable state (None when absent).

    Breakers are deep-copied (they mutate in place); the shedder's
    decision cursor rides along so a restored RandomShed replays the
    same per-decision streams.
    """
    if ov is None:
        return None
    return {
        "level": ov.level,
        "transitions": list(ov.transitions),
        "shed_total": ov.shed_total,
        "denied": ov.denied,
        "outcomes": list(ov._outcomes),
        "breakers": copy.deepcopy(ov._breakers),
        "shedder_decision": getattr(ov._shedder, "_decision", None),
    }


def health_state(hp: Any) -> Optional[dict]:
    """The tail-tolerance plane's mutable state (None when absent/inert).

    ``export_state`` returns fresh containers of immutable values, so a
    later plane mutation can never reach into a snapshot; the dict is
    deep-copied again where StepState/Snapshot semantics require it.
    """
    if hp is None or not getattr(hp, "enabled", False):
        return None
    return hp.export_state()


def tenancy_state(tn: Any) -> Optional[dict]:
    """The tenancy plane's mutable state (None when absent).

    ``export_state`` returns fresh JSON-safe containers (ledgers,
    bucket levels, in-flight charges, fair-share deficits), so a later
    plane mutation can never reach into a snapshot.
    """
    if tn is None or not getattr(tn, "enabled", False):
        return None
    return tn.export_state()


def capture_engine_cursors(engines: Any) -> Optional[tuple]:
    """Fault-plane cursors per engine (None entries for plain engines).

    A restored loop re-dispatches the in-flight batch; rolling these
    cursors back guarantees the re-dispatch consumes exactly the fault
    events the crashed dispatch consumed.
    """
    if not engines:
        return None
    out: list[Optional[tuple]] = []
    for e in engines:
        if hasattr(e, "serve_calls"):
            out.append((e.serve_calls, e.straggler_events, e.down_until))
        else:
            out.append(None)
    return tuple(out)


@dataclass
class LiveState:
    """References + current values of one loop's running state.

    Built fresh by the loop's capture closure on every plane call:
    ``queue``/``metrics``/``tracer``/``overload``/``admission``/
    ``engines``/``rng`` are the live objects; ``now``/``next_arrival``/
    ``idle``/``running``/``iteration`` are the current local values
    (``idle`` as the raw heap list, ``running`` as ``(request,
    remaining_steps)`` pairs).
    """

    queue: Any
    metrics: Any
    now: float = 0.0
    next_arrival: int = 0
    rejected_before: int = 0
    tracer: Any = None
    overload: Any = None
    admission: Any = None
    engines: tuple = ()
    idle: Optional[list] = None
    running: Optional[list] = None
    iteration: Optional[int] = None
    rng: Any = None
    # The live TailTolerancePlane (None when the run carries no plane).
    health: Any = None
    # The live TenancyPlane (None when the run carries no plane).
    tenancy: Any = None
    extra: dict = field(default_factory=dict)


@dataclass
class Snapshot:
    """One checkpoint: full state as of the start of ``step``.

    Every field here must be consumed by ``restore_state`` (tcblint
    TCB013 checks the pairing in both directions).
    """

    seq: int
    step: int
    now: float
    next_arrival: int
    rejected_before: int
    queue: Any
    metrics: Any
    tracer: Optional[dict]
    overload: Optional[dict]
    admission: Optional[tuple]
    idle: Optional[tuple]
    running: Optional[tuple]
    iteration: Optional[int]
    rng_state: Optional[dict]
    engine_cursors: Optional[tuple]
    health: Optional[dict]
    tenancy: Optional[dict]
    extra: dict

    @classmethod
    def capture(cls, live: LiveState, *, seq: int, step: int) -> "Snapshot":
        return cls(
            seq=seq,
            step=step,
            now=live.now,
            next_arrival=live.next_arrival,
            rejected_before=live.rejected_before,
            queue=copy.deepcopy(live.queue),
            metrics=copy.deepcopy(live.metrics),
            tracer=copy.deepcopy(tracer_state(live.tracer)),
            overload=overload_state(live.overload),
            admission=(
                None
                if live.admission is None
                else (
                    live.admission._queued_tokens,
                    list(live.admission.rejected),
                )
            ),
            idle=None if live.idle is None else tuple(live.idle),
            running=None if live.running is None else tuple(live.running),
            iteration=live.iteration,
            rng_state=(
                None
                if live.rng is None
                else copy.deepcopy(live.rng.bit_generator.state)
            ),
            engine_cursors=capture_engine_cursors(live.engines),
            health=health_state(live.health),
            tenancy=tenancy_state(live.tenancy),
            extra=copy.deepcopy(live.extra),
        )

    def summary(self) -> dict[str, Any]:
        """JSON-safe projection for the differential report."""
        return {
            "seq": self.seq,
            "step": self.step,
            "now": self.now,
            "next_arrival": self.next_arrival,
            "queued": len(self.queue),
            "served": self.metrics.num_served,
            "arrived": self.metrics.arrived,
        }
